file(REMOVE_RECURSE
  "CMakeFiles/avg_distance_table.dir/avg_distance_table.cpp.o"
  "CMakeFiles/avg_distance_table.dir/avg_distance_table.cpp.o.d"
  "avg_distance_table"
  "avg_distance_table.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/avg_distance_table.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
