file(REMOVE_RECURSE
  "CMakeFiles/message_routing.dir/message_routing.cpp.o"
  "CMakeFiles/message_routing.dir/message_routing.cpp.o.d"
  "message_routing"
  "message_routing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/message_routing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
