# Empty compiler generated dependencies file for message_routing.
# This may be replaced when dependencies are built.
