file(REMOVE_RECURSE
  "CMakeFiles/reliable_transfer.dir/reliable_transfer.cpp.o"
  "CMakeFiles/reliable_transfer.dir/reliable_transfer.cpp.o.d"
  "reliable_transfer"
  "reliable_transfer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/reliable_transfer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
