file(REMOVE_RECURSE
  "CMakeFiles/embeddings_tour.dir/embeddings_tour.cpp.o"
  "CMakeFiles/embeddings_tour.dir/embeddings_tour.cpp.o.d"
  "embeddings_tour"
  "embeddings_tour.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/embeddings_tour.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
