# Empty compiler generated dependencies file for embeddings_tour.
# This may be replaced when dependencies are built.
