# Empty dependencies file for bench_substrate_crosscheck.
# This may be replaced when dependencies are built.
