file(REMOVE_RECURSE
  "CMakeFiles/bench_substrate_crosscheck.dir/bench_substrate_crosscheck.cpp.o"
  "CMakeFiles/bench_substrate_crosscheck.dir/bench_substrate_crosscheck.cpp.o.d"
  "bench_substrate_crosscheck"
  "bench_substrate_crosscheck.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_substrate_crosscheck.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
