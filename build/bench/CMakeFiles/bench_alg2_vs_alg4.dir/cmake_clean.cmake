file(REMOVE_RECURSE
  "CMakeFiles/bench_alg2_vs_alg4.dir/bench_alg2_vs_alg4.cpp.o"
  "CMakeFiles/bench_alg2_vs_alg4.dir/bench_alg2_vs_alg4.cpp.o.d"
  "bench_alg2_vs_alg4"
  "bench_alg2_vs_alg4.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_alg2_vs_alg4.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
