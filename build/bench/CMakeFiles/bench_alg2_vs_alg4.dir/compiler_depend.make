# Empty compiler generated dependencies file for bench_alg2_vs_alg4.
# This may be replaced when dependencies are built.
