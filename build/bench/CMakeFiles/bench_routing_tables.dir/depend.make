# Empty dependencies file for bench_routing_tables.
# This may be replaced when dependencies are built.
