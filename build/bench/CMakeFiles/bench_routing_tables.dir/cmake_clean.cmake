file(REMOVE_RECURSE
  "CMakeFiles/bench_routing_tables.dir/bench_routing_tables.cpp.o"
  "CMakeFiles/bench_routing_tables.dir/bench_routing_tables.cpp.o.d"
  "bench_routing_tables"
  "bench_routing_tables.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_routing_tables.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
