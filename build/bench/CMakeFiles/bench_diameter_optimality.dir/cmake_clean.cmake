file(REMOVE_RECURSE
  "CMakeFiles/bench_diameter_optimality.dir/bench_diameter_optimality.cpp.o"
  "CMakeFiles/bench_diameter_optimality.dir/bench_diameter_optimality.cpp.o.d"
  "bench_diameter_optimality"
  "bench_diameter_optimality.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_diameter_optimality.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
