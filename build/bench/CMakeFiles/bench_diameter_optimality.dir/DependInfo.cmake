
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_diameter_optimality.cpp" "bench/CMakeFiles/bench_diameter_optimality.dir/bench_diameter_optimality.cpp.o" "gcc" "bench/CMakeFiles/bench_diameter_optimality.dir/bench_diameter_optimality.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/net/CMakeFiles/dbn_net.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/dbn_core.dir/DependInfo.cmake"
  "/root/repo/build/src/debruijn/CMakeFiles/dbn_debruijn.dir/DependInfo.cmake"
  "/root/repo/build/src/strings/CMakeFiles/dbn_strings.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/dbn_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
