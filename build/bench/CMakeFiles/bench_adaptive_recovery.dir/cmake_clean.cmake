file(REMOVE_RECURSE
  "CMakeFiles/bench_adaptive_recovery.dir/bench_adaptive_recovery.cpp.o"
  "CMakeFiles/bench_adaptive_recovery.dir/bench_adaptive_recovery.cpp.o.d"
  "bench_adaptive_recovery"
  "bench_adaptive_recovery.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_adaptive_recovery.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
