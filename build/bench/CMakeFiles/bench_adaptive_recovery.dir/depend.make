# Empty dependencies file for bench_adaptive_recovery.
# This may be replaced when dependencies are built.
