file(REMOVE_RECURSE
  "CMakeFiles/bench_eq5_directed_avg.dir/bench_eq5_directed_avg.cpp.o"
  "CMakeFiles/bench_eq5_directed_avg.dir/bench_eq5_directed_avg.cpp.o.d"
  "bench_eq5_directed_avg"
  "bench_eq5_directed_avg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_eq5_directed_avg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
