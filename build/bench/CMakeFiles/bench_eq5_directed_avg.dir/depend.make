# Empty dependencies file for bench_eq5_directed_avg.
# This may be replaced when dependencies are built.
