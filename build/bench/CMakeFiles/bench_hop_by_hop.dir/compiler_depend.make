# Empty compiler generated dependencies file for bench_hop_by_hop.
# This may be replaced when dependencies are built.
