file(REMOVE_RECURSE
  "CMakeFiles/bench_hop_by_hop.dir/bench_hop_by_hop.cpp.o"
  "CMakeFiles/bench_hop_by_hop.dir/bench_hop_by_hop.cpp.o.d"
  "bench_hop_by_hop"
  "bench_hop_by_hop.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_hop_by_hop.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
