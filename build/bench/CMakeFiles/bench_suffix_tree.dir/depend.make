# Empty dependencies file for bench_suffix_tree.
# This may be replaced when dependencies are built.
