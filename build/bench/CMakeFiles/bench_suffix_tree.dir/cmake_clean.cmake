file(REMOVE_RECURSE
  "CMakeFiles/bench_suffix_tree.dir/bench_suffix_tree.cpp.o"
  "CMakeFiles/bench_suffix_tree.dir/bench_suffix_tree.cpp.o.d"
  "bench_suffix_tree"
  "bench_suffix_tree.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_suffix_tree.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
