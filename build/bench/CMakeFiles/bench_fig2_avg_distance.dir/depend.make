# Empty dependencies file for bench_fig2_avg_distance.
# This may be replaced when dependencies are built.
