# Empty dependencies file for bench_alg1_scaling.
# This may be replaced when dependencies are built.
