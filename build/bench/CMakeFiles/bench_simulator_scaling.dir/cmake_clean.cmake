file(REMOVE_RECURSE
  "CMakeFiles/bench_simulator_scaling.dir/bench_simulator_scaling.cpp.o"
  "CMakeFiles/bench_simulator_scaling.dir/bench_simulator_scaling.cpp.o.d"
  "bench_simulator_scaling"
  "bench_simulator_scaling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_simulator_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
