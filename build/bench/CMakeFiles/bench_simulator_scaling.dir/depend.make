# Empty dependencies file for bench_simulator_scaling.
# This may be replaced when dependencies are built.
