file(REMOVE_RECURSE
  "CMakeFiles/bench_wildcard_balancing.dir/bench_wildcard_balancing.cpp.o"
  "CMakeFiles/bench_wildcard_balancing.dir/bench_wildcard_balancing.cpp.o.d"
  "bench_wildcard_balancing"
  "bench_wildcard_balancing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_wildcard_balancing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
