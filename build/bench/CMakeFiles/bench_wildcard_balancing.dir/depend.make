# Empty dependencies file for bench_wildcard_balancing.
# This may be replaced when dependencies are built.
