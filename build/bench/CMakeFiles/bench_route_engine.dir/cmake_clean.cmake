file(REMOVE_RECURSE
  "CMakeFiles/bench_route_engine.dir/bench_route_engine.cpp.o"
  "CMakeFiles/bench_route_engine.dir/bench_route_engine.cpp.o.d"
  "bench_route_engine"
  "bench_route_engine.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_route_engine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
