# Empty compiler generated dependencies file for bench_route_engine.
# This may be replaced when dependencies are built.
