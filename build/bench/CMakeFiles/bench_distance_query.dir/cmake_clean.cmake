file(REMOVE_RECURSE
  "CMakeFiles/bench_distance_query.dir/bench_distance_query.cpp.o"
  "CMakeFiles/bench_distance_query.dir/bench_distance_query.cpp.o.d"
  "bench_distance_query"
  "bench_distance_query.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_distance_query.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
