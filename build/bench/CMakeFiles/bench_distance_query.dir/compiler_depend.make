# Empty compiler generated dependencies file for bench_distance_query.
# This may be replaced when dependencies are built.
