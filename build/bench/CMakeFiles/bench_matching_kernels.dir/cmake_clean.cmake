file(REMOVE_RECURSE
  "CMakeFiles/bench_matching_kernels.dir/bench_matching_kernels.cpp.o"
  "CMakeFiles/bench_matching_kernels.dir/bench_matching_kernels.cpp.o.d"
  "bench_matching_kernels"
  "bench_matching_kernels.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_matching_kernels.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
