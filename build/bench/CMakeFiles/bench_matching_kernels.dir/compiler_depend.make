# Empty compiler generated dependencies file for bench_matching_kernels.
# This may be replaced when dependencies are built.
