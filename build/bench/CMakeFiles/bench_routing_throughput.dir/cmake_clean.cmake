file(REMOVE_RECURSE
  "CMakeFiles/bench_routing_throughput.dir/bench_routing_throughput.cpp.o"
  "CMakeFiles/bench_routing_throughput.dir/bench_routing_throughput.cpp.o.d"
  "bench_routing_throughput"
  "bench_routing_throughput.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_routing_throughput.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
