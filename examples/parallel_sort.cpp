// Parallel sorting on the de Bruijn network (the Samatham-Pradhan
// "sorting network" claim): one value per site, odd-even transposition
// over the dilation-1 linear-array embedding.
//
// Run: ./build/examples/parallel_sort
#include <iostream>

#include "common/rng.hpp"
#include "debruijn/word.hpp"
#include "net/sort_emulation.hpp"

int main() {
  using namespace dbn;
  using namespace dbn::net;

  constexpr std::uint32_t d = 2;
  constexpr std::size_t k = 6;  // 64 sites
  const std::uint64_t n = Word::vertex_count(d, k);

  Rng rng(2026);
  std::vector<std::uint64_t> values(n);
  for (auto& v : values) {
    v = rng.below(100);
  }
  std::cout << "DN(2,6): sorting " << n << " values, one per site, over the "
               "embedded linear array\n\ninput:  ";
  for (std::size_t i = 0; i < 16; ++i) {
    std::cout << values[i] << " ";
  }
  std::cout << "...\n";

  const SortEmulationResult result = odd_even_transposition_sort(d, k, values);

  std::cout << "output: ";
  for (std::size_t i = 0; i < 16; ++i) {
    std::cout << result.sorted[i] << " ";
  }
  std::cout << "...\n\n";
  std::cout << "rounds: " << result.rounds << " (bound: N = " << n
            << "), exchanges: " << result.exchanges << "\n";
  std::cout << "every compare-exchange crossed a single de Bruijn link — "
               "array position i\nlives at site "
            << Word::from_rank(d, k, result.site_of_position[0]).to_string()
            << ", position i+1 at its neighbor "
            << Word::from_rank(d, k, result.site_of_position[1]).to_string()
            << ", and so on\nalong a Hamiltonian path.\n";
  return 0;
}
