// Reliable transfers over a faulty, congested DN(2,6): the paper's raw
// forwarding drops on dead sites and full queues; the retransmission
// protocol (net/reliable.hpp) recovers, falling back to fault-aware routes
// after the first attempt.
//
// Run: ./build/examples/reliable_transfer
#include <iostream>

#include "common/rng.hpp"
#include "core/routers.hpp"
#include "net/fault.hpp"
#include "net/reliable.hpp"
#include "net/simulator.hpp"

int main() {
  using namespace dbn;
  using namespace dbn::net;

  constexpr std::uint32_t d = 2;
  constexpr std::size_t k = 6;
  const DeBruijnGraph g(d, k, Orientation::Undirected);

  Rng rng(17);
  const auto failed = random_fault_set(g, 2, rng);
  SimConfig config;
  config.radix = d;
  config.k = k;
  config.link_queue_capacity = 2;  // tight queues: overflow drops happen
  config.wildcard_policy = WildcardPolicy::Random;
  Simulator sim(config);
  std::cout << "failed sites:";
  for (std::uint64_t v = 0; v < g.vertex_count(); ++v) {
    if (failed[v]) {
      sim.fail_node(v);
      std::cout << " " << g.word(v).to_string();
    }
  }
  std::cout << "\nlink queues capped at 2 messages\n\n";

  const FaultAwareRouter fault_router(g, failed);
  const AttemptRouter router = [&](const Word& x, const Word& y, int attempt) {
    if (attempt == 0) {
      // First try: the paper's oblivious shortest path with wildcards.
      return route_bidirectional_suffix_tree(x, y, WildcardMode::Wildcards);
    }
    return fault_router.route(x, y).value_or(RoutingPath{});
  };

  // A synchronized burst of 120 transfers (stressful for the queues).
  std::vector<Transfer> transfers;
  while (transfers.size() < 120) {
    const std::uint64_t s = rng.below(g.vertex_count());
    const std::uint64_t t = rng.below(g.vertex_count());
    if (!failed[s] && !failed[t] && s != t) {
      transfers.push_back({s, t});
    }
  }
  ReliableConfig rc;
  rc.timeout = 48.0;
  rc.max_attempts = 10;
  const ReliableReport report = run_reliable(sim, transfers, router, rc);

  std::cout << "transfers:       " << report.transfers << "\n"
            << "completed:       " << report.completed << "\n"
            << "retransmissions: " << report.retransmissions << "\n"
            << "abandoned:       " << report.abandoned << "\n"
            << "completion time: " << report.completion_time << "\n\n";
  std::cout << "raw network drops underneath: "
            << sim.stats().dropped_fault << " at dead sites, "
            << sim.stats().dropped_overflow << " queue overflows\n";
  return 0;
}
