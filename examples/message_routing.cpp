// Message routing end to end: the paper's five-field message, its wire
// encoding, and a simulated DN(2,6) moving a batch of messages under the
// wildcard balancing policies of Section 3.1's remark.
//
// Run: ./build/examples/message_routing
#include <iomanip>
#include <iostream>

#include "common/rng.hpp"
#include "core/routers.hpp"
#include "net/message.hpp"
#include "net/simulator.hpp"
#include "net/traffic.hpp"

int main() {
  using namespace dbn;
  using namespace dbn::net;

  constexpr std::uint32_t d = 2;
  constexpr std::size_t k = 6;

  // --- One message, field by field (paper Section 3.1). -------------------
  const Word src(d, {0, 1, 1, 0, 1, 0});
  const Word dst(d, {1, 1, 0, 0, 1, 1});
  const Message msg(ControlCode::Data, src, dst,
                    route_bidirectional_suffix_tree(src, dst,
                                                    WildcardMode::Wildcards),
                    {'h', 'i'});
  std::cout << "message: control=Data source=" << msg.source.to_string()
            << " destination=" << msg.destination.to_string()
            << "\n         routing path " << msg.path.to_string()
            << " (length " << msg.path.length() << ")\n";

  const auto wire = encode(msg);
  std::cout << "wire encoding: " << wire.size() << " bytes:";
  for (std::size_t i = 0; i < 16 && i < wire.size(); ++i) {
    std::cout << " " << std::hex << std::setw(2) << std::setfill('0')
              << static_cast<int>(wire[i]);
  }
  std::cout << std::dec << " ...\n";
  const auto decoded = decode(wire);
  std::cout << "decode(encode(msg)) == msg: "
            << (decoded.has_value() && *decoded == msg ? "yes" : "NO")
            << "\n\n";

  // --- A network moving many such messages. -------------------------------
  for (const WildcardPolicy policy :
       {WildcardPolicy::Zero, WildcardPolicy::Random,
        WildcardPolicy::LeastQueue}) {
    SimConfig config;
    config.radix = d;
    config.k = k;
    config.wildcard_policy = policy;
    Simulator sim(config);
    Rng rng(7);
    for (const Injection& inj : uniform_traffic(d, k, 0.2, 100.0, rng)) {
      const Word s = Word::from_rank(d, k, inj.source);
      const Word t = Word::from_rank(d, k, inj.destination);
      sim.inject(inj.time,
                 Message(ControlCode::Data, s, t,
                         route_bidirectional_suffix_tree(
                             s, t, WildcardMode::Wildcards)));
    }
    sim.run();
    const SimStats& stats = sim.stats();
    const char* name = policy == WildcardPolicy::Zero      ? "Zero      "
                       : policy == WildcardPolicy::Random ? "Random    "
                                                          : "LeastQueue";
    std::cout << "policy " << name << ": " << stats.delivered << "/"
              << stats.injected << " delivered, mean latency "
              << stats.mean_latency() << ", p99 "
              << stats.latency_percentile(99) << ", max queue "
              << stats.max_queue << "\n";
  }
  std::cout << "\nEvery site only ever looked at the first pair of the "
               "routing-path field —\nthe forwarding rule of Section 3.1.\n";
  return 0;
}
