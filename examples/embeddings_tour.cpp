// Embeddings tour: the Section 1 versatility claims (Samatham & Pradhan),
// realized — rings, linear arrays, complete binary trees and
// shuffle-exchange emulation inside the binary de Bruijn network.
//
// Run: ./build/examples/embeddings_tour
#include <iostream>

#include "debruijn/embedding.hpp"
#include "debruijn/sequence.hpp"

int main() {
  using namespace dbn;

  // --- De Bruijn sequence and the Hamiltonian ring. ------------------------
  const auto seq = de_bruijn_sequence(2, 4);
  std::cout << "B(2,4) de Bruijn sequence: ";
  for (const Digit x : seq) {
    std::cout << x;
  }
  std::cout << "  (every 4-bit window occurs exactly once)\n\n";

  const auto ring = ring_embedding(2, 4);
  std::cout << "ring of " << ring.size()
            << " nodes with dilation 1 (Hamiltonian cycle):\n  ";
  for (std::size_t i = 0; i < ring.size(); ++i) {
    const Word w = Word::from_rank(2, 4, ring[i]);
    for (std::size_t j = 0; j < w.length(); ++j) {
      std::cout << w.digit(j);
    }
    std::cout << (i + 1 == ring.size() ? "\n" : " -> ");
  }

  // --- Complete binary tree. ------------------------------------------------
  const std::size_t k = 4;
  const auto tree = complete_binary_tree_embedding(k);
  std::cout << "\ncomplete binary tree with 2^" << k << "-1 = "
            << tree.size() - 1 << " nodes, dilation 1:\n";
  for (std::uint64_t i = 1; i < 8; ++i) {
    const Word w = Word::from_rank(2, k, tree[i]);
    std::cout << "  heap[" << i << "] = " << w.to_string();
    if (2 * i < tree.size()) {
      std::cout << "  children " << Word::from_rank(2, k, tree[2 * i]).to_string()
                << ", " << Word::from_rank(2, k, tree[2 * i + 1]).to_string()
                << " (left shifts)";
    }
    std::cout << "\n";
  }

  // --- Shuffle-exchange emulation. -------------------------------------------
  const Word w(2, {0, 1, 1, 0});
  const auto shuffle = shuffle_emulation(w);
  std::cout << "\nshuffle-exchange SE(4) emulation from " << w.to_string()
            << ":\n";
  std::cout << "  shuffle  (1 hop):  " << shuffle[0].to_string() << " -> "
            << shuffle[1].to_string() << "\n";
  const auto exchange = exchange_emulation(w);
  std::cout << "  exchange (2 hops): " << exchange[0].to_string() << " -> "
            << exchange[1].to_string() << " -> " << exchange[2].to_string()
            << "\n";
  std::cout << "\nAll adjacency checks run in this repo's test suite "
               "(test_embedding.cpp).\n";
  return 0;
}
