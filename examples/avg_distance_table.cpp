// Average-distance explorer (the Figure 2 machinery as a CLI).
//
// Usage: ./build/examples/avg_distance_table [d] [k] [samples]
//   defaults: d = 2, k = 8, samples = 50000.
// Prints the directed and undirected distance statistics of DG(d,k),
// choosing exact enumeration when d^k is small and sampling otherwise.
#include <cstdlib>
#include <iostream>

#include "common/rng.hpp"
#include "common/table.hpp"
#include "core/average_distance.hpp"
#include "core/distance.hpp"

int main(int argc, char** argv) {
  using namespace dbn;
  const std::uint32_t d = argc > 1 ? static_cast<std::uint32_t>(std::atoi(argv[1])) : 2;
  const std::size_t k = argc > 2 ? static_cast<std::size_t>(std::atoi(argv[2])) : 8;
  const std::size_t samples =
      argc > 3 ? static_cast<std::size_t>(std::atol(argv[3])) : 50000;
  if (d < 2 || k < 1) {
    std::cerr << "usage: avg_distance_table [d>=2] [k>=1] [samples]\n";
    return 1;
  }
  const std::uint64_t n = Word::vertex_count(d, k);
  std::cout << "DG(" << d << "," << k << "): N = " << n << ", diameter = "
            << k << "\n\n";

  Table table({"quantity", "value", "method"});
  table.add_row({"directed avg (eq. (5), paper)",
                 Table::num(directed_average_distance_closed_form(d, k), 4),
                 "closed form"});
  table.add_row({"directed avg (exact)",
                 Table::num(directed_average_distance_exact(d, k), 4),
                 "cylinder enumeration"});
  Rng rng(1);
  if (n <= 4096) {
    table.add_row({"undirected avg",
                   Table::num(undirected_average_exact_bfs(d, k), 4),
                   "exact all-pairs BFS"});
    const auto histogram = undirected_distance_histogram(d, k);
    for (std::size_t i = 0; i <= k; ++i) {
      table.add_row({"undirected pairs at distance " + std::to_string(i),
                     std::to_string(histogram[i]), "exact"});
    }
  } else {
    table.add_row({"undirected avg",
                   Table::num(undirected_average_sampled(d, k, samples, rng), 4),
                   std::to_string(samples) + "-pair sampling"});
  }
  table.print(std::cout, "");
  return 0;
}
