// Fault tolerance demo: DN(3,4) with failed sites.
//
// Shows the Section 1 claim in action: with f <= d-1 failures the network
// keeps routing (here with the fault-aware BFS router), the oblivious
// shortest paths that cross a dead site are dropped, and the adversarial
// 2d-2 cut isolates a site.
//
// Run: ./build/examples/fault_tolerance
#include <iostream>

#include "common/rng.hpp"
#include "core/routers.hpp"
#include "net/fault.hpp"
#include "net/simulator.hpp"

int main() {
  using namespace dbn;
  using namespace dbn::net;

  constexpr std::uint32_t d = 3;
  constexpr std::size_t k = 4;
  const DeBruijnGraph g(d, k, Orientation::Undirected);
  Rng rng(99);

  // --- Fail d-1 = 2 random sites. -----------------------------------------
  const auto failed = random_fault_set(g, d - 1, rng);
  std::cout << "DN(3,4), " << g.vertex_count() << " sites; failed:";
  for (std::uint64_t v = 0; v < g.vertex_count(); ++v) {
    if (failed[v]) {
      std::cout << " " << g.word(v).to_string();
    }
  }
  std::cout << "\nsurvivors connected: "
            << (survivors_connected(g, failed) ? "yes" : "no")
            << "   (paper: tolerates up to d-1 = " << d - 1 << ")\n\n";

  // --- Route around the failures. -----------------------------------------
  const FaultAwareRouter router(g, failed);
  SimConfig config;
  config.radix = d;
  config.k = k;
  Simulator sim(config);
  for (std::uint64_t v = 0; v < g.vertex_count(); ++v) {
    if (failed[v]) {
      sim.fail_node(v);
    }
  }

  std::uint64_t sent = 0, detoured = 0;
  for (int probe = 0; probe < 300; ++probe) {
    const std::uint64_t xr = rng.below(g.vertex_count());
    const std::uint64_t yr = rng.below(g.vertex_count());
    if (failed[xr] || failed[yr]) {
      continue;
    }
    const Word x = g.word(xr);
    const Word y = g.word(yr);
    const auto path = router.route(x, y);
    if (!path.has_value()) {
      std::cout << "UNROUTABLE: " << x.to_string() << " -> " << y.to_string()
                << "\n";
      continue;
    }
    detoured += path->length() >
                route_bidirectional_suffix_tree(x, y).length();
    sim.inject(0.0, Message(ControlCode::Data, x, y, *path));
    ++sent;
  }
  sim.run();
  std::cout << "sent " << sent << " messages around the failures: "
            << sim.stats().delivered << " delivered, "
            << sim.stats().dropped_fault << " dropped (expected 0)\n";
  std::cout << detoured
            << " of them needed a detour longer than the fault-free optimum\n\n";

  // --- The tight cut: isolate a constant word. -----------------------------
  const Word corner = Word::zero(d, k);
  std::vector<bool> cut(g.vertex_count(), false);
  for (const std::uint64_t v : g.neighbors(corner.rank())) {
    cut[v] = true;
  }
  std::cout << "failing all " << g.neighbors(corner.rank()).size()
            << " neighbors of " << corner.to_string() << " (degree 2d-2 = "
            << 2 * d - 2 << "): survivors connected: "
            << (survivors_connected(g, cut) ? "yes" : "no")
            << "   (the bound is tight)\n";
  return 0;
}
