// Broadcast demo: one-to-all dissemination over a BFS spanning tree of
// DN(2,5), with the all-port and single-port schedules side by side.
//
// Run: ./build/examples/broadcast
#include <iostream>

#include "debruijn/bfs.hpp"
#include "net/broadcast.hpp"

int main() {
  using namespace dbn;
  using namespace dbn::net;

  const DeBruijnGraph g(2, 5, Orientation::Undirected);
  const Word root_word(2, {1, 0, 1, 1, 0});
  const BroadcastTree tree = build_broadcast_tree(g, root_word.rank());

  std::cout << "DN(2,5), broadcast from " << root_word.to_string()
            << " over a BFS spanning tree (height " << tree.height << ")\n\n";

  const BroadcastSchedule all = schedule_broadcast(tree, PortModel::AllPort);
  const BroadcastSchedule single =
      schedule_broadcast(tree, PortModel::SinglePort);

  std::cout << "all-port:    completes in " << all.completion << " rounds ("
            << all.messages << " point-to-point messages)\n";
  std::cout << "single-port: completes in " << single.completion
            << " rounds (same " << single.messages << " messages)\n\n";

  // Who gets it when (all-port = BFS layers).
  for (int round = 0; round <= all.completion; ++round) {
    std::cout << "round " << round << ":";
    int shown = 0;
    for (std::uint64_t v = 0; v < g.vertex_count(); ++v) {
      if (all.receive_round[v] == round) {
        if (shown < 8) {
          std::cout << " " << g.word(v).to_string();
        }
        ++shown;
      }
    }
    if (shown > 8) {
      std::cout << " ... (" << shown << " sites)";
    }
    std::cout << "\n";
  }

  std::cout << "\nThe all-port completion equals the root's eccentricity ("
            << eccentricity(g, root_word.rank())
            << ") — no schedule can do better, and the de Bruijn diameter "
               "guarantees it is at most k.\n";
  return 0;
}
