// Quickstart: the library in five minutes.
//
// Builds the Figure 1 graph DG(2,3), computes distances with the paper's
// closed forms, and routes a message with each of the three algorithms,
// printing the paths in the paper's {(a,b),...} notation.
//
// Build & run:  cmake -B build -G Ninja && cmake --build build
//               ./build/examples/quickstart
#include <iostream>

#include "core/distance.hpp"
#include "core/routers.hpp"
#include "debruijn/bfs.hpp"
#include "debruijn/graph.hpp"

int main() {
  using namespace dbn;

  // --- Vertices are d-ary words (the paper's X = (x_1,...,x_k)). ---------
  const Word x(2, {0, 1, 1});
  const Word y(2, {1, 0, 0});
  std::cout << "DN(2,3): route from X = " << x.to_string() << " to Y = "
            << y.to_string() << "\n\n";

  // --- Distances (Section 2). --------------------------------------------
  std::cout << "directed distance   D(X,Y) = " << directed_distance(x, y)
            << "   (Property 1: k minus the suffix/prefix overlap)\n";
  std::cout << "undirected distance D(X,Y) = " << undirected_distance(x, y)
            << "   (Theorem 2, via suffix trees in O(k))\n\n";

  // --- Routing (Section 3). ----------------------------------------------
  const RoutingPath uni = route_unidirectional(x, y);
  std::cout << "Algorithm 1 (uni-directional):  " << uni.to_string()
            << "  -> " << uni.apply(x).to_string() << "\n";

  const RoutingPath mp = route_bidirectional_mp(x, y);
  std::cout << "Algorithm 2 (failure function): " << mp.to_string() << "  -> "
            << mp.apply(x).to_string() << "\n";

  const RoutingPath st = route_bidirectional_suffix_tree(x, y);
  std::cout << "Algorithm 4 (suffix tree):      " << st.to_string() << "  -> "
            << st.apply(x).to_string() << "\n\n";

  // --- Wildcard digits: the forwarding site's free choice. -----------------
  const Word a = Word::zero(2, 5);
  const Word b(2, {1, 0, 0, 0, 1});
  const RoutingPath wc =
      route_bidirectional_suffix_tree(a, b, WildcardMode::Wildcards);
  std::cout << "With wildcards, " << a.to_string() << " -> " << b.to_string()
            << " routes as " << wc.to_string()
            << ":\n  any digit works for \"*\" — e.g. resolving it to 1 gives "
            << wc.apply(a, [](std::size_t, ShiftType, const Word&) {
                 return Digit{1};
               }).to_string()
            << " = Y, and sites can pick\n  the emptiest link instead "
               "(the paper's traffic-balancing remark).\n\n";

  // --- The graph itself, when you want to enumerate it. -------------------
  const DeBruijnGraph g(2, 3, Orientation::Undirected);
  std::cout << "DG(2,3) undirected: N = " << g.vertex_count()
            << " vertices, diameter = " << diameter(g) << " (= k)\n";
  std::cout << "neighbors of " << x.to_string() << ":";
  for (const std::uint64_t v : g.neighbors(x.rank())) {
    std::cout << " " << g.word(v).to_string();
  }
  std::cout << "\n\nEvery path above has length equal to the distance — "
               "that is the paper's\noptimality guarantee, validated "
               "against BFS in this repo's test suite.\n";
  return 0;
}
