#include <gtest/gtest.h>

#include <set>

#include "debruijn/graph.hpp"
#include "debruijn/sequence.hpp"
#include "testing_util.hpp"

namespace dbn {
namespace {

TEST(DeBruijnSequence, KnownSmallSequences) {
  EXPECT_EQ(de_bruijn_sequence(2, 1), (std::vector<Digit>{0, 1}));
  EXPECT_EQ(de_bruijn_sequence(2, 2), (std::vector<Digit>{0, 0, 1, 1}));
  // FKM produces the lexicographically least sequence: B(2,3) = 00010111.
  EXPECT_EQ(de_bruijn_sequence(2, 3),
            (std::vector<Digit>{0, 0, 0, 1, 0, 1, 1, 1}));
}

void expect_valid_de_bruijn_sequence(const std::vector<Digit>& seq,
                                     std::uint32_t d, std::size_t n,
                                     const char* label) {
  const std::uint64_t count = Word::vertex_count(d, n);
  ASSERT_EQ(seq.size(), count) << label;
  std::set<std::uint64_t> seen;
  for (std::size_t i = 0; i < seq.size(); ++i) {
    std::uint64_t rank = 0;
    for (std::size_t j = 0; j < n; ++j) {
      ASSERT_LT(seq[(i + j) % seq.size()], d) << label;
      rank = rank * d + seq[(i + j) % seq.size()];
    }
    EXPECT_TRUE(seen.insert(rank).second)
        << label << ": duplicate window at " << i << " (d=" << d
        << ", n=" << n << ")";
  }
  EXPECT_EQ(seen.size(), count) << label;
}

TEST(DeBruijnSequence, EveryWindowAppearsExactlyOnce) {
  for (const auto& [d, n] : std::vector<std::pair<std::uint32_t, std::size_t>>{
           {2, 1}, {2, 4}, {2, 7}, {3, 3}, {3, 4}, {4, 3}, {5, 2}, {7, 2}}) {
    expect_valid_de_bruijn_sequence(de_bruijn_sequence(d, n), d, n, "FKM");
    expect_valid_de_bruijn_sequence(de_bruijn_sequence_hierholzer(d, n), d, n,
                                    "Hierholzer");
    expect_valid_de_bruijn_sequence(de_bruijn_sequence_greedy(d, n), d, n,
                                    "greedy");
  }
}

TEST(DeBruijnSequence, ConstructionsProduceDifferentSequences) {
  // The paper's Section 1 cites "the existence of multiple Hamiltonian
  // paths": distinct constructions witness distinct cycles.
  const auto fkm = de_bruijn_sequence(2, 4);
  const auto hierholzer = de_bruijn_sequence_hierholzer(2, 4);
  const auto greedy = de_bruijn_sequence_greedy(2, 4);
  EXPECT_NE(fkm, greedy);
  // (hierholzer may coincide with either on tiny cases, so only assert
  // that at least two of the three differ.)
  EXPECT_TRUE(fkm != hierholzer || hierholzer != greedy);
}

TEST(DeBruijnSequence, GreedyKnownSmallSequences) {
  // Martin's prefer-largest: B(2,2) = 1100, B(2,3) = 11101000.
  EXPECT_EQ(de_bruijn_sequence_greedy(2, 2), (std::vector<Digit>{1, 1, 0, 0}));
  EXPECT_EQ(de_bruijn_sequence_greedy(2, 3),
            (std::vector<Digit>{1, 1, 1, 0, 1, 0, 0, 0}));
}

TEST(HamiltonianCycle, FromAlternativeSequencesAlsoHamiltonian) {
  for (const auto& seq :
       {de_bruijn_sequence_hierholzer(2, 4), de_bruijn_sequence_greedy(2, 4)}) {
    const auto cycle = hamiltonian_cycle_from_sequence(2, 4, seq);
    const DeBruijnGraph g(2, 4, Orientation::Directed);
    ASSERT_EQ(cycle.size(), g.vertex_count());
    const std::set<std::uint64_t> distinct(cycle.begin(), cycle.end());
    EXPECT_EQ(distinct.size(), g.vertex_count());
    for (std::size_t i = 0; i < cycle.size(); ++i) {
      EXPECT_TRUE(g.has_edge(cycle[i], cycle[(i + 1) % cycle.size()]));
    }
  }
  // And the two cycles genuinely differ.
  EXPECT_NE(hamiltonian_cycle_from_sequence(2, 4,
                                            de_bruijn_sequence_greedy(2, 4)),
            hamiltonian_cycle(2, 4));
}

TEST(DeBruijnSequence, DigitsInRange) {
  const auto seq = de_bruijn_sequence(5, 3);
  for (const Digit x : seq) {
    EXPECT_LT(x, 5u);
  }
}

TEST(HamiltonianCycle, VisitsEveryVertexOnceViaEdges) {
  for (const auto& [d, k] : std::vector<std::pair<std::uint32_t, std::size_t>>{
           {2, 3}, {2, 6}, {3, 3}, {4, 2}, {5, 2}}) {
    const auto cycle = hamiltonian_cycle(d, k);
    const DeBruijnGraph g(d, k, Orientation::Directed);
    ASSERT_EQ(cycle.size(), g.vertex_count());
    std::set<std::uint64_t> seen(cycle.begin(), cycle.end());
    EXPECT_EQ(seen.size(), g.vertex_count()) << "not a permutation";
    for (std::size_t i = 0; i < cycle.size(); ++i) {
      const std::uint64_t from = cycle[i];
      const std::uint64_t to = cycle[(i + 1) % cycle.size()];
      EXPECT_TRUE(g.has_edge(from, to))
          << "cycle step " << i << " is not a directed edge (d=" << d
          << ", k=" << k << ")";
    }
  }
}

}  // namespace
}  // namespace dbn
