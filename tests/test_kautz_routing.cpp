#include <gtest/gtest.h>

#include <deque>

#include "common/contract.hpp"
#include "debruijn/kautz_routing.hpp"
#include "testing_util.hpp"

namespace dbn {
namespace {

std::vector<int> kautz_bfs(const KautzGraph& g, std::uint64_t source) {
  std::vector<int> dist(g.vertex_count(), -1);
  std::deque<std::uint64_t> frontier;
  dist[source] = 0;
  frontier.push_back(source);
  while (!frontier.empty()) {
    const std::uint64_t v = frontier.front();
    frontier.pop_front();
    for (const std::uint64_t w : g.out_neighbors(v)) {
      if (dist[w] == -1) {
        dist[w] = dist[v] + 1;
        frontier.push_back(w);
      }
    }
  }
  return dist;
}

TEST(KautzRouting, DistanceFormulaMatchesBfsAllPairs) {
  for (const auto& [d, k] : std::vector<std::pair<std::uint32_t, std::size_t>>{
           {2, 1}, {2, 2}, {2, 3}, {2, 4}, {2, 5}, {3, 2}, {3, 3}, {4, 2},
           {4, 3}, {5, 2}}) {
    const KautzGraph g(d, k);
    for (std::uint64_t xr = 0; xr < g.vertex_count(); ++xr) {
      const Word x = g.word(xr);
      const std::vector<int> dist = kautz_bfs(g, xr);
      for (std::uint64_t yr = 0; yr < g.vertex_count(); ++yr) {
        const Word y = g.word(yr);
        EXPECT_EQ(kautz_directed_distance(g, x, y), dist[yr])
            << "K(" << d << "," << k << ") X=" << x.to_string()
            << " Y=" << y.to_string();
      }
    }
  }
}

TEST(KautzRouting, PathsAreValidKautzWalks) {
  const KautzGraph g(3, 4);
  DBN_SEEDED_RNG(rng, 88);
  for (int trial = 0; trial < 300; ++trial) {
    const Word x = g.word(rng.below(g.vertex_count()));
    const Word y = g.word(rng.below(g.vertex_count()));
    const RoutingPath path = kautz_route(g, x, y);
    EXPECT_EQ(static_cast<int>(path.length()), kautz_directed_distance(g, x, y));
    Word at = x;
    for (const Hop& h : path.hops()) {
      ASSERT_EQ(h.type, ShiftType::Left);
      // Legal Kautz move: the appended digit differs from the last digit.
      EXPECT_NE(h.digit, at.digit(at.length() - 1))
          << "illegal move from " << at.to_string();
      at = at.left_shift(h.digit);
    }
    EXPECT_EQ(at, y);
  }
}

TEST(KautzRouting, SelfRouteIsEmpty) {
  const KautzGraph g(2, 3);
  const Word w = g.word(5);
  EXPECT_TRUE(kautz_route(g, w, w).empty());
  EXPECT_EQ(kautz_directed_distance(g, w, w), 0);
}

TEST(KautzRouting, DegenerateDegreeOneIsATwoCycle) {
  // K(1,k) has exactly the two alternating words over {0,1}; routing must
  // handle the unique-out-neighbor case.
  for (std::size_t k : {1u, 2u, 5u}) {
    const KautzGraph g(1, k);
    ASSERT_EQ(g.vertex_count(), 2u);
    for (std::uint64_t xr = 0; xr < 2; ++xr) {
      const Word x = g.word(xr);
      const std::vector<int> dist = kautz_bfs(g, xr);
      for (std::uint64_t yr = 0; yr < 2; ++yr) {
        const Word y = g.word(yr);
        EXPECT_EQ(kautz_directed_distance(g, x, y), dist[yr]);
        const RoutingPath path = kautz_route(g, x, y);
        EXPECT_EQ(static_cast<int>(path.length()), dist[yr]);
        Word at = x;
        for (const Hop& h : path.hops()) {
          EXPECT_NE(h.digit, at.digit(at.length() - 1));
          at = at.left_shift(h.digit);
        }
        EXPECT_EQ(at, y);
      }
    }
  }
}

TEST(KautzRouting, DegenerateKOneAndXEqualsYAllPairs) {
  // k = 1: the in-word adjacency rule is vacuous and the move rule
  // (append a != x_1) makes K(d,1) the complete digraph on d+1 vertices.
  for (std::uint32_t d : {1u, 2u, 5u}) {
    const KautzGraph g(d, 1);
    for (std::uint64_t xr = 0; xr < g.vertex_count(); ++xr) {
      const Word x = g.word(xr);
      EXPECT_TRUE(kautz_route(g, x, x).empty());
      EXPECT_EQ(kautz_directed_distance(g, x, x), 0);
      for (std::uint64_t yr = 0; yr < g.vertex_count(); ++yr) {
        const Word y = g.word(yr);
        const int expected = xr == yr ? 0 : 1;
        EXPECT_EQ(kautz_directed_distance(g, x, y), expected);
        EXPECT_EQ(static_cast<int>(kautz_route(g, x, y).length()), expected);
      }
    }
  }
  // Explicit X == Y on a larger graph.
  const KautzGraph g(3, 4);
  for (std::uint64_t r = 0; r < g.vertex_count(); r += 5) {
    const Word w = g.word(r);
    EXPECT_TRUE(kautz_route(g, w, w).empty());
    EXPECT_EQ(kautz_directed_distance(g, w, w), 0);
  }
}

TEST(KautzRouting, RejectsNonKautzWords) {
  const KautzGraph g(2, 3);
  // (0,0,1) has equal adjacent digits — not a Kautz word.
  EXPECT_THROW(kautz_route(g, Word(3, {0, 0, 1}), Word(3, {0, 1, 0})),
               ContractViolation);
  // Wrong radix.
  EXPECT_THROW(kautz_route(g, Word(2, {0, 1, 0}), Word(2, {0, 1, 0})),
               ContractViolation);
}

}  // namespace
}  // namespace dbn
