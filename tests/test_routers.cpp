#include <gtest/gtest.h>

#include <algorithm>

#include "common/contract.hpp"
#include "common/rng.hpp"
#include "core/bfs_router.hpp"
#include "core/distance.hpp"
#include "core/routers.hpp"
#include "debruijn/bfs.hpp"
#include "testing_util.hpp"

namespace dbn {
namespace {

using dbn::testing::DkParam;

class RouterGrid : public ::testing::TestWithParam<DkParam> {};

TEST_P(RouterGrid, UnidirectionalPathsAreValidAndOptimalAllPairs) {
  const auto [d, k] = GetParam();
  const DeBruijnGraph g(d, k, Orientation::Directed);
  for (std::uint64_t xr = 0; xr < g.vertex_count(); ++xr) {
    const Word x = g.word(xr);
    const std::vector<int> dist = bfs_distances(g, xr);
    for (std::uint64_t yr = 0; yr < g.vertex_count(); ++yr) {
      const Word y = g.word(yr);
      const RoutingPath path = route_unidirectional(x, y);
      // Optimal: length equals the BFS distance; left shifts only.
      EXPECT_EQ(static_cast<int>(path.length()), dist[yr])
          << "X=" << x.to_string() << " Y=" << y.to_string();
      for (const Hop& h : path.hops()) {
        EXPECT_EQ(h.type, ShiftType::Left);
        EXPECT_FALSE(h.is_wildcard());
      }
      // Valid: applying the path reaches Y.
      EXPECT_EQ(path.apply(x), y);
    }
  }
}

TEST_P(RouterGrid, BidirectionalMpPathsAreValidAndOptimalAllPairs) {
  const auto [d, k] = GetParam();
  const DeBruijnGraph g(d, k, Orientation::Undirected);
  for (std::uint64_t xr = 0; xr < g.vertex_count(); ++xr) {
    const Word x = g.word(xr);
    const std::vector<int> dist = bfs_distances(g, xr);
    for (std::uint64_t yr = 0; yr < g.vertex_count(); ++yr) {
      const Word y = g.word(yr);
      const RoutingPath path = route_bidirectional_mp(x, y);
      EXPECT_EQ(static_cast<int>(path.length()), dist[yr])
          << "X=" << x.to_string() << " Y=" << y.to_string();
      EXPECT_EQ(path.apply(x), y)
          << "X=" << x.to_string() << " Y=" << y.to_string()
          << " path=" << path.to_string();
    }
  }
}

TEST_P(RouterGrid, SuffixTreeRouterAgreesWithMpAllPairs) {
  const auto [d, k] = GetParam();
  const DeBruijnGraph g(d, k, Orientation::Undirected);
  for (std::uint64_t xr = 0; xr < g.vertex_count(); ++xr) {
    const Word x = g.word(xr);
    for (std::uint64_t yr = 0; yr < g.vertex_count(); ++yr) {
      const Word y = g.word(yr);
      const RoutingPath mp = route_bidirectional_mp(x, y);
      const RoutingPath st = route_bidirectional_suffix_tree(x, y);
      EXPECT_EQ(st.length(), mp.length())
          << "X=" << x.to_string() << " Y=" << y.to_string();
      EXPECT_EQ(st.apply(x), y)
          << "X=" << x.to_string() << " Y=" << y.to_string()
          << " path=" << st.to_string();
    }
  }
}

TEST_P(RouterGrid, SuffixAutomatonRouterAgreesWithMpAllPairs) {
  const auto [d, k] = GetParam();
  const DeBruijnGraph g(d, k, Orientation::Undirected);
  for (std::uint64_t xr = 0; xr < g.vertex_count(); ++xr) {
    const Word x = g.word(xr);
    for (std::uint64_t yr = 0; yr < g.vertex_count(); ++yr) {
      const Word y = g.word(yr);
      const RoutingPath mp = route_bidirectional_mp(x, y);
      const RoutingPath sa = route_bidirectional_suffix_automaton(x, y);
      EXPECT_EQ(sa.length(), mp.length())
          << "X=" << x.to_string() << " Y=" << y.to_string();
      EXPECT_EQ(sa.apply(x), y)
          << "X=" << x.to_string() << " Y=" << y.to_string()
          << " path=" << sa.to_string();
    }
  }
}

INSTANTIATE_TEST_SUITE_P(SmallGrid, RouterGrid,
                         ::testing::ValuesIn(dbn::testing::small_grid()),
                         ::testing::PrintToStringParamName());

// Degenerate corners (d=1, k=1) run the identical all-pairs sweeps: every
// router must handle the single-vertex and diameter-1 networks.
INSTANTIATE_TEST_SUITE_P(DegenerateGrid, RouterGrid,
                         ::testing::ValuesIn(dbn::testing::degenerate_grid()),
                         ::testing::PrintToStringParamName());

TEST(Routers, OneLetterAlphabetRoutesAreEmpty) {
  for (std::size_t k : {1u, 3u, 6u}) {
    const Word only = Word::zero(1, k);
    EXPECT_TRUE(route_unidirectional(only, only).empty());
    EXPECT_TRUE(route_bidirectional_mp(only, only).empty());
    EXPECT_TRUE(route_bidirectional_suffix_tree(only, only).empty());
    EXPECT_TRUE(route_bidirectional_suffix_automaton(only, only).empty());
  }
}

TEST(Routers, ExplicitXEqualsYAcrossGrids) {
  for (const auto& grids :
       {dbn::testing::small_grid(), dbn::testing::degenerate_grid()}) {
    for (const auto& [d, k] : grids) {
      const std::uint64_t n = Word::vertex_count(d, k);
      for (std::uint64_t r = 0; r < std::min<std::uint64_t>(n, 32); ++r) {
        const Word x = Word::from_rank(d, k, r);
        EXPECT_TRUE(route_unidirectional(x, x).empty());
        EXPECT_TRUE(route_bidirectional_mp(x, x).empty());
        EXPECT_TRUE(route_bidirectional_suffix_tree(x, x).empty());
        EXPECT_TRUE(route_bidirectional_suffix_automaton(x, x).empty());
      }
    }
  }
}

TEST(Routers, WildcardPathsReachDestinationUnderAnyResolution) {
  DBN_SEEDED_RNG(rng, 3001);
  for (int trial = 0; trial < 300; ++trial) {
    const std::uint32_t d = 2 + trial % 3;
    const std::size_t k = 1 + rng.below(10);
    const Word x = testing::random_word(rng, d, k);
    const Word y = testing::random_word(rng, d, k);
    for (auto route : {&route_bidirectional_mp, &route_bidirectional_suffix_tree}) {
      const RoutingPath path = route(x, y, WildcardMode::Wildcards);
      // Zero, max-digit, and random resolutions must all reach y.
      EXPECT_EQ(path.apply(x), y);
      EXPECT_EQ(path.apply(x, [&](std::size_t, ShiftType, const Word&) {
        return static_cast<Digit>(d - 1);
      }), y);
      Rng sub = rng.fork(trial);
      EXPECT_EQ(path.apply(x, [&](std::size_t, ShiftType, const Word&) {
        return static_cast<Digit>(sub.below(d));
      }), y);
      // Wildcard and concrete variants have equal length.
      EXPECT_EQ(path.length(), route(x, y, WildcardMode::Concrete).length());
    }
  }
}

TEST(Routers, LargeWordsRoutersAgreeAndPathsValid) {
  DBN_SEEDED_RNG(rng, 3002);
  for (const auto& [d, k] : dbn::testing::large_grid()) {
    for (int trial = 0; trial < 25; ++trial) {
      const Word x = testing::random_word(rng, d, k);
      const Word y = testing::random_word(rng, d, k);
      const RoutingPath uni = route_unidirectional(x, y);
      const RoutingPath mp = route_bidirectional_mp(x, y);
      const RoutingPath st = route_bidirectional_suffix_tree(x, y);
      EXPECT_EQ(uni.apply(x), y);
      EXPECT_EQ(mp.apply(x), y);
      EXPECT_EQ(st.apply(x), y);
      EXPECT_EQ(static_cast<int>(uni.length()), directed_distance(x, y));
      EXPECT_EQ(mp.length(), st.length());
      EXPECT_EQ(static_cast<int>(mp.length()), undirected_distance(x, y));
      EXPECT_LE(mp.length(), uni.length());
      EXPECT_LE(mp.length(), k);
    }
  }
}

TEST(Routers, SelfRouteIsEmpty) {
  const Word x(2, {1, 0, 1, 1});
  EXPECT_TRUE(route_unidirectional(x, x).empty());
  EXPECT_TRUE(route_bidirectional_mp(x, x).empty());
  EXPECT_TRUE(route_bidirectional_suffix_tree(x, x).empty());
}

TEST(Routers, RejectMismatchedEndpoints) {
  const Word x(2, {0, 1});
  const Word y(2, {0, 1, 1});
  const Word z(3, {0, 1});
  EXPECT_THROW(route_unidirectional(x, y), ContractViolation);
  EXPECT_THROW(route_bidirectional_mp(x, z), ContractViolation);
  EXPECT_THROW(route_bidirectional_suffix_tree(x, y), ContractViolation);
}

TEST(Routers, PaperTrivialCaseEmitsAllLeftShifts) {
  // X = (0,0,0), Y = (1,1,1): D1 = D2 = k, so Algorithm 2 line 6 applies.
  const Word x(2, {0, 0, 0});
  const Word y(2, {1, 1, 1});
  const RoutingPath path = route_bidirectional_mp(x, y);
  ASSERT_EQ(path.length(), 3u);
  for (const Hop& h : path.hops()) {
    EXPECT_EQ(h.type, ShiftType::Left);
    EXPECT_EQ(h.digit, 1u);
  }
}

TEST(BfsRouter, PathsAreValidAndOptimal) {
  for (Orientation o : {Orientation::Directed, Orientation::Undirected}) {
    const DeBruijnGraph g(3, 3, o);
    for (std::uint64_t xr = 0; xr < g.vertex_count(); xr += 2) {
      const std::vector<int> dist = bfs_distances(g, xr);
      for (std::uint64_t yr = 0; yr < g.vertex_count(); yr += 3) {
        const Word x = g.word(xr);
        const Word y = g.word(yr);
        const RoutingPath path = route_bfs(g, x, y);
        EXPECT_EQ(static_cast<int>(path.length()), dist[yr]);
        EXPECT_EQ(path.apply(x), y);
      }
    }
  }
}

TEST(BfsRouter, ClassifyEdgeRoundTrips) {
  const DeBruijnGraph g(2, 4, Orientation::Undirected);
  for (std::uint64_t u = 0; u < g.vertex_count(); ++u) {
    for (const std::uint64_t v : g.neighbors(u)) {
      const Hop hop = classify_edge(g, u, v);
      const Word w = g.word(u);
      const Word next = hop.type == ShiftType::Left ? w.left_shift(hop.digit)
                                                    : w.right_shift(hop.digit);
      EXPECT_EQ(next.rank(), v);
    }
  }
}

TEST(BfsRouter, ClassifyEdgeRejectsNonEdges) {
  const DeBruijnGraph g(2, 3, Orientation::Undirected);
  EXPECT_THROW(classify_edge(g, 0, 3), ContractViolation);
}

}  // namespace
}  // namespace dbn
