// Randomized scenario sweep over the simulator: for arbitrary
// configurations (orientation, policies, forwarding mode, queue limits,
// link delays, faults) the accounting and causality invariants must hold.
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "core/routers.hpp"
#include "net/adaptive.hpp"
#include "net/fault.hpp"
#include "net/simulator.hpp"
#include "testing_util.hpp"

namespace dbn::net {
namespace {

struct Scenario {
  SimConfig config;
  std::size_t messages = 0;
  std::size_t faults = 0;
};

Scenario random_scenario(Rng& rng) {
  Scenario s;
  s.config.radix = 2 + static_cast<std::uint32_t>(rng.below(3));
  s.config.k = 2 + rng.below(4);
  s.config.orientation =
      rng.chance(0.3) ? Orientation::Directed : Orientation::Undirected;
  s.config.link_delay = 0.25 + rng.uniform01() * 3.0;
  if (rng.chance(0.4)) {
    s.config.link_queue_capacity = 1 + rng.below(4);
  }
  s.config.wildcard_policy = static_cast<WildcardPolicy>(rng.below(3));
  // Hop-by-hop + faults can livelock conceptually; greedy is stateless and
  // always reaches the destination in a fault-free run, so only pair
  // hop-by-hop with zero faults here.
  const bool hop_by_hop = rng.chance(0.3);
  s.config.forwarding =
      hop_by_hop ? ForwardingMode::HopByHop : ForwardingMode::SourceRouted;
  s.config.record_traces = rng.chance(0.5);
  s.config.seed = rng();
  s.messages = 1 + rng.below(120);
  s.faults = hop_by_hop ? 0 : rng.below(3);
  return s;
}

TEST(SimulatorProperties, AccountingAlwaysBalances) {
  Rng rng(8088);
  for (int trial = 0; trial < 60; ++trial) {
    const Scenario s = random_scenario(rng);
    Simulator sim(s.config);
    const DeBruijnGraph& g = sim.graph();
    std::vector<bool> failed(g.vertex_count(), false);
    if (s.faults > 0 && s.faults < g.vertex_count()) {
      failed = random_fault_set(g, s.faults, rng);
      for (std::uint64_t v = 0; v < g.vertex_count(); ++v) {
        if (failed[v]) {
          sim.fail_node(v);
        }
      }
    }
    for (std::size_t m = 0; m < s.messages; ++m) {
      const Word src = testing::random_word(rng, s.config.radix, s.config.k);
      const Word dst = testing::random_word(rng, s.config.radix, s.config.k);
      RoutingPath path;
      if (s.config.forwarding == ForwardingMode::SourceRouted) {
        path = s.config.orientation == Orientation::Directed
                   ? route_unidirectional(src, dst)
                   : route_bidirectional_suffix_tree(
                         src, dst, WildcardMode::Wildcards);
      }
      sim.inject(rng.uniform01() * 50.0,
                 Message(ControlCode::Data, src, dst, std::move(path)));
    }
    sim.run();
    const SimStats& st = sim.stats();
    // Conservation: every injected message reaches exactly one outcome.
    EXPECT_EQ(st.injected, st.delivered + st.dropped_fault + st.dropped_link +
                               st.dropped_overflow + st.misdelivered)
        << "trial " << trial;
    EXPECT_EQ(st.injected, s.messages);
    EXPECT_EQ(st.misdelivered, 0u) << "all paths are correct by construction";
    EXPECT_EQ(st.latencies.size(), st.delivered);
    // Latency sanity: hops * delay <= latency (queueing only adds).
    if (st.delivered > 0) {
      EXPECT_GE(st.total_latency + 1e-9,
                static_cast<double>(st.total_hops) * s.config.link_delay -
                    1e-6 * static_cast<double>(st.delivered))
          << "trial " << trial;
    }
    // Link transmissions equal total hops of all messages (delivered or
    // not, every transmission was counted when it started)...
    std::uint64_t transmitted = 0;
    for (const std::uint64_t t : sim.link_transmissions()) {
      transmitted += t;
    }
    EXPECT_GE(transmitted, st.total_hops) << "trial " << trial;
    // Traces: if recorded, one per message, timestamps non-decreasing.
    if (s.config.record_traces) {
      ASSERT_EQ(sim.traces().size(), s.messages);
      for (const auto& trace : sim.traces()) {
        for (std::size_t i = 1; i < trace.visits.size(); ++i) {
          EXPECT_LE(trace.visits[i - 1].first, trace.visits[i].first);
        }
      }
    }
  }
}

TEST(SimulatorProperties, AdaptiveNeverBeatsTheBfsOracle) {
  // Local-knowledge routing cross-checked against global knowledge: the
  // adaptive walk (deflections included) must never deliver a pair the
  // fault-aware BFS proves disconnected, and a delivered walk can never
  // undercut the surviving shortest path.
  Rng rng(9099);
  const std::vector<std::pair<std::uint32_t, std::size_t>> grid = {
      {2, 4}, {2, 6}, {3, 3}};
  for (const auto& [d, k] : grid) {
    const DeBruijnGraph g(d, k, Orientation::Undirected);
    for (int trial = 0; trial < 12; ++trial) {
      const std::size_t faults =
          rng.below(std::min<std::uint64_t>(g.vertex_count() / 4, 9));
      const auto failed = random_fault_set(g, faults, rng);
      const FaultAwareRouter oracle(g, failed);
      for (int probe = 0; probe < 20; ++probe) {
        const std::uint64_t xr = rng.below(g.vertex_count());
        const std::uint64_t yr = rng.below(g.vertex_count());
        if (failed[xr] || failed[yr]) {
          continue;
        }
        AdaptiveConfig config;
        config.jitter = rng.chance(0.5) ? 0.2 : 0.0;
        const AdaptiveResult r =
            adaptive_route(g, failed, g.word(xr), g.word(yr), rng, config);
        const auto path = oracle.route(g.word(xr), g.word(yr));
        if (r.delivered) {
          ASSERT_TRUE(path.has_value())
              << "d=" << d << " k=" << k << " " << xr << "->" << yr
              << ": adaptive delivered across a proven partition";
          EXPECT_GE(r.hops, static_cast<int>(path->length()));
        }
      }
    }
  }
}

TEST(SimulatorProperties, DeliveredLatenciesScaleWithLinkDelay) {
  // Doubling link_delay exactly doubles every uncongested latency.
  for (const double delay : {0.5, 1.0, 2.0}) {
    SimConfig config;
    config.radix = 2;
    config.k = 5;
    config.link_delay = delay;
    Simulator sim(config);
    const Word src = Word::from_rank(2, 5, 1);
    const Word dst = Word::from_rank(2, 5, 30);
    const RoutingPath path = route_bidirectional_mp(src, dst);
    sim.inject(0.0, Message(ControlCode::Data, src, dst, path));
    sim.run();
    EXPECT_DOUBLE_EQ(sim.stats().mean_latency(),
                     static_cast<double>(path.length()) * delay);
  }
}

}  // namespace
}  // namespace dbn::net
