#include <gtest/gtest.h>

#include <numeric>

#include "common/rng.hpp"
#include "core/average_distance.hpp"
#include "core/distance.hpp"
#include "debruijn/word.hpp"
#include "testing_util.hpp"

namespace dbn {
namespace {

TEST(AverageDistance, ExactBfsAndFormulaAgree) {
  for (const auto& [d, k] : std::vector<std::pair<std::uint32_t, std::size_t>>{
           {2, 1}, {2, 2}, {2, 3}, {2, 4}, {2, 5}, {2, 6}, {3, 2}, {3, 3},
           {3, 4}, {4, 2}, {4, 3}, {5, 2}}) {
    EXPECT_NEAR(undirected_average_exact_bfs(d, k),
                undirected_average_exact_formula(d, k), 1e-9)
        << "d=" << d << " k=" << k;
  }
}

TEST(AverageDistance, SampledEstimateConvergesToExact) {
  Rng rng(4001);
  for (const auto& [d, k] : std::vector<std::pair<std::uint32_t, std::size_t>>{
           {2, 5}, {3, 3}, {4, 2}}) {
    const double exact = undirected_average_exact_bfs(d, k);
    const double sampled = undirected_average_sampled(d, k, 20000, rng);
    // Std error <= k / (2 sqrt(20000)) ~ 0.02k; allow 5 sigma.
    EXPECT_NEAR(sampled, exact, 0.1 * static_cast<double>(k))
        << "d=" << d << " k=" << k;
  }
}

TEST(AverageDistance, HistogramSumsToAllPairs) {
  for (const auto& [d, k] : std::vector<std::pair<std::uint32_t, std::size_t>>{
           {2, 4}, {3, 3}, {4, 2}}) {
    const auto histogram = undirected_distance_histogram(d, k);
    const std::uint64_t n = Word::vertex_count(d, k);
    EXPECT_EQ(std::accumulate(histogram.begin(), histogram.end(),
                              std::uint64_t{0}),
              n * n);
    // Exactly N self-pairs at distance 0.
    EXPECT_EQ(histogram[0], n);
    // Someone is at diameter distance (the diameter is exactly k).
    EXPECT_GT(histogram[k], 0u);
  }
}

TEST(AverageDistance, UndirectedAverageBelowDirectedAverage) {
  // Extra moves can only help: the undirected average is strictly below the
  // directed one for k >= 2.
  for (const auto& [d, k] : std::vector<std::pair<std::uint32_t, std::size_t>>{
           {2, 4}, {2, 6}, {3, 3}, {4, 3}}) {
    EXPECT_LT(undirected_average_exact_bfs(d, k),
              directed_average_distance_exact(d, k))
        << "d=" << d << " k=" << k;
  }
}

TEST(AverageDistance, GrowsRoughlyLinearlyInK) {
  // Figure 2 shape: for fixed d the average grows with k, staying within a
  // constant of the diameter.
  double prev = 0.0;
  for (std::size_t k = 1; k <= 7; ++k) {
    const double avg = undirected_average_exact_bfs(2, k);
    EXPECT_GT(avg, prev);
    EXPECT_LT(avg, static_cast<double>(k));
    prev = avg;
  }
}

TEST(AverageDistance, SampledRejectsZeroSamples) {
  Rng rng(1);
  EXPECT_THROW(undirected_average_sampled(2, 3, 0, rng), ContractViolation);
}

}  // namespace
}  // namespace dbn
