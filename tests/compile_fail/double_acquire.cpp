// MUST NOT COMPILE under -Wthread-safety -Werror: the second MutexLock
// re-acquires a capability this scope already holds, which deadlocks a
// non-recursive std::mutex at runtime. The analysis rejects it at compile
// time; if this TU ever builds in the static-analysis job, the
// scoped-capability plumbing has gone dead.
#include "common/annotations.hpp"
#include "common/mutex.hpp"

namespace {

class Counter {
 public:
  void bump() {
    const dbn::MutexLock outer(mutex_);
    const dbn::MutexLock inner(mutex_);  // expected-error: already held
    ++value_;
  }

 private:
  dbn::Mutex mutex_;
  int value_ DBN_GUARDED_BY(mutex_) = 0;
};

}  // namespace

int main() {
  Counter counter;
  counter.bump();
  return 0;
}
