// MUST COMPILE cleanly under -Wthread-safety -Werror: the lock-correct
// twin of the two negative TUs. It exists so a failure of those tests
// provably means "the analysis caught the bug" rather than "the harness
// can't compile anything" (wrong include paths, broken flags, ...).
#include "common/annotations.hpp"
#include "common/mutex.hpp"

namespace {

class Counter {
 public:
  void bump() {
    const dbn::MutexLock lock(mutex_);
    ++value_;
  }

  int value() const {
    const dbn::MutexLock lock(mutex_);
    return value_;
  }

 private:
  mutable dbn::Mutex mutex_;
  int value_ DBN_GUARDED_BY(mutex_) = 0;
};

}  // namespace

int main() {
  Counter counter;
  counter.bump();
  return counter.value();
}
