// MUST NOT COMPILE under -Wthread-safety -Werror: both members touch a
// DBN_GUARDED_BY field without holding its mutex. If this TU ever builds
// in the static-analysis job, the guarded_by plumbing has silently gone
// dead (e.g. the macros expanded to nothing under clang) — which is
// exactly the regression tests/compile_fail exists to catch.
#include "common/annotations.hpp"
#include "common/mutex.hpp"

namespace {

class Account {
 public:
  void deposit(int amount) {
    balance_ += amount;  // expected-error: writing without mutex_ held
  }

  int balance() const {
    return balance_;  // expected-error: reading without mutex_ held
  }

 private:
  mutable dbn::Mutex mutex_;
  int balance_ DBN_GUARDED_BY(mutex_) = 0;
};

}  // namespace

int main() {
  Account account;
  account.deposit(1);
  return account.balance();
}
