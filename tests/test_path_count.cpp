#include <gtest/gtest.h>

#include <set>

#include "common/contract.hpp"
#include "core/path_count.hpp"
#include "debruijn/bfs.hpp"
#include "testing_util.hpp"

namespace dbn {
namespace {

/// Brute-force: enumerate all shortest paths by DFS over the BFS layers.
std::uint64_t brute_count(const DeBruijnGraph& g, std::uint64_t src,
                          std::uint64_t dst) {
  const auto dist = bfs_distances(g, src);
  std::uint64_t total = 0;
  // Iterative DFS over (path end, depth) pairs.
  struct Frame {
    std::uint64_t at;
    int depth;
  };
  std::vector<Frame> frames = {{src, 0}};
  while (!frames.empty()) {
    const Frame f = frames.back();
    frames.pop_back();
    if (f.at == dst && f.depth == dist[dst]) {
      ++total;
      continue;
    }
    for (const std::uint64_t w : g.neighbors(f.at)) {
      if (dist[w] == f.depth + 1 && dist[w] <= dist[dst]) {
        frames.push_back({w, f.depth + 1});
      }
    }
  }
  return total;
}

TEST(PathCount, MatchesBruteForceOnSmallGraphs) {
  for (Orientation o : {Orientation::Directed, Orientation::Undirected}) {
    const DeBruijnGraph g(2, 4, o);
    for (std::uint64_t src = 0; src < g.vertex_count(); ++src) {
      const auto counts = count_shortest_paths_from(g, src);
      for (std::uint64_t dst = 0; dst < g.vertex_count(); ++dst) {
        EXPECT_EQ(counts[dst], brute_count(g, src, dst))
            << "src=" << src << " dst=" << dst;
      }
    }
  }
}

TEST(PathCount, SelfPathIsUnique) {
  const DeBruijnGraph g(3, 3, Orientation::Undirected);
  for (std::uint64_t v = 0; v < g.vertex_count(); v += 5) {
    EXPECT_EQ(count_shortest_paths(g, v, v), 1u);
  }
}

TEST(PathCount, NeighborsHaveExactlyOnePath) {
  const DeBruijnGraph g(2, 5, Orientation::Undirected);
  for (std::uint64_t v = 0; v < g.vertex_count(); ++v) {
    for (const std::uint64_t w : g.neighbors(v)) {
      EXPECT_EQ(count_shortest_paths(g, v, w), 1u);
    }
  }
}

TEST(PathCount, DiversityAtLeastOneOnAverage) {
  const DeBruijnGraph g(2, 5, Orientation::Undirected);
  const double mean = mean_shortest_path_count(g);
  EXPECT_GE(mean, 1.0);
  // The undirected DG(2,5) offers real diversity.
  EXPECT_GT(mean, 1.2);
}

TEST(PathCount, DirectedShortestPathsAreUnique) {
  // A directed path of length j from X necessarily ends at
  // (x_{j+1},...,x_k, a_1,...,a_j); reaching Y forces every inserted digit,
  // so the shortest path is unique for every ordered pair.
  for (const auto& [d, k] : std::vector<std::pair<std::uint32_t, std::size_t>>{
           {2, 5}, {3, 3}, {4, 3}}) {
    const DeBruijnGraph g(d, k, Orientation::Directed);
    for (std::uint64_t src = 0; src < g.vertex_count(); ++src) {
      const auto counts = count_shortest_paths_from(g, src);
      for (std::uint64_t dst = 0; dst < g.vertex_count(); ++dst) {
        EXPECT_EQ(counts[dst], 1u)
            << "d=" << d << " k=" << k << " src=" << src << " dst=" << dst;
      }
    }
  }
}

TEST(PathCount, RejectsBadRanks) {
  const DeBruijnGraph g(2, 3, Orientation::Undirected);
  EXPECT_THROW(count_shortest_paths_from(g, 8), ContractViolation);
  EXPECT_THROW(count_shortest_paths(g, 0, 8), ContractViolation);
}

}  // namespace
}  // namespace dbn
