// The conformance kit testing itself: clean sweeps stay clean, injected
// bugs are caught and shrink to minimal reproducers, word families have
// the structure they advertise, and the corpus line format round-trips.
#include <gtest/gtest.h>

#include <memory>
#include <sstream>

#include "common/contract.hpp"
#include "core/distance.hpp"
#include "testing_util.hpp"
#include "testkit/conformance.hpp"
#include "testkit/corpus.hpp"
#include "testkit/fuzzer.hpp"
#include "testkit/oracle.hpp"
#include "testkit/shrinker.hpp"
#include "testkit/word_families.hpp"

namespace dbn::testkit {
namespace {

bool has_kind(const PairReport& report, FailureKind kind) {
  for (const Failure& f : report.failures) {
    if (f.kind == kind) {
      return true;
    }
  }
  return false;
}

TEST(OracleSets, AllPairsCleanOnSmallNetworks) {
  struct Point {
    NetworkFamily family;
    std::uint32_t d;
    std::size_t k;
  };
  for (const Point& p : {Point{NetworkFamily::DeBruijnDirected, 2, 3},
                         Point{NetworkFamily::DeBruijnUndirected, 2, 3},
                         Point{NetworkFamily::DeBruijnUndirected, 3, 2},
                         Point{NetworkFamily::DeBruijnDirected, 1, 2},
                         Point{NetworkFamily::Kautz, 2, 2}}) {
    const OracleSet set =
        p.family == NetworkFamily::Kautz
            ? OracleSet::kautz(p.d, p.k)
            : OracleSet::debruijn(p.d, p.k,
                                  p.family == NetworkFamily::DeBruijnDirected
                                      ? Orientation::Directed
                                      : Orientation::Undirected);
    ASSERT_TRUE(set.has_bfs_reference());
    EXPECT_GE(set.oracles().size(), 2u);
    const Conformance driver(set);
    DBN_SEEDED_RNG(rng, 4101);
    for (std::uint64_t xi = 0; xi < set.vertex_count(); ++xi) {
      for (std::uint64_t yi = 0; yi < set.vertex_count(); ++yi) {
        const Word x =
            p.family == NetworkFamily::Kautz
                ? set.random_vertex(rng)
                : Word::from_rank(set.radix(), p.k, xi);
        const Word y =
            p.family == NetworkFamily::Kautz
                ? set.random_vertex(rng)
                : Word::from_rank(set.radix(), p.k, yi);
        const PairReport report = driver.check(x, y);
        ASSERT_TRUE(report.ok())
            << family_name(p.family) << " d=" << p.d << " k=" << p.k << "\n"
            << report.to_string();
      }
    }
  }
}

TEST(OracleSets, LegalHopEnforcesTheMoveRule) {
  const OracleSet directed =
      OracleSet::debruijn(2, 3, Orientation::Directed);
  const OracleSet undirected =
      OracleSet::debruijn(2, 3, Orientation::Undirected);
  const OracleSet kautz = OracleSet::kautz(2, 3);
  const Word x(2, {0, 1, 1});
  EXPECT_TRUE(directed.legal_hop(x, {ShiftType::Left, 0}));
  EXPECT_FALSE(directed.legal_hop(x, {ShiftType::Right, 0}));
  EXPECT_TRUE(undirected.legal_hop(x, {ShiftType::Right, 0}));
  // Kautz: the appended digit must differ from the current last digit.
  const Word kx(3, {0, 1, 2});
  EXPECT_TRUE(kautz.legal_hop(kx, {ShiftType::Left, 0}));
  EXPECT_FALSE(kautz.legal_hop(kx, {ShiftType::Left, 2}));
  EXPECT_FALSE(kautz.legal_hop(kx, {ShiftType::Right, 0}));
  // Wildcards are legal iff some concrete digit is, and resolve legally.
  EXPECT_TRUE(kautz.legal_hop(kx, {ShiftType::Left, kWildcard}));
  const Word applied = kautz.apply_hop(kx, {ShiftType::Left, kWildcard});
  EXPECT_NE(applied.digit(2), kx.digit(2));
}

// A deliberately wrong oracle: answers with the *directed* distance inside
// the undirected set. Conformance must flag every pair where right shifts
// help.
class DirectedImpostorOracle final : public RouteOracle {
 public:
  std::string_view name() const override { return "directed-impostor"; }
  int distance(const Word& x, const Word& y) override {
    return directed_distance(x, y);
  }
};

TEST(Conformance, CatchesAnInjectedDistanceBug) {
  OracleSet set = OracleSet::debruijn(2, 3, Orientation::Undirected);
  set.add_oracle(std::make_unique<DirectedImpostorOracle>());
  const Conformance driver(set);
  // X = (0,1,1), Y = (0,0,1): Y is a right shift of X, so the undirected
  // distance is 1 while the directed one is larger.
  const PairReport bad = driver.check(Word(2, {0, 1, 1}), Word(2, {0, 0, 1}));
  EXPECT_FALSE(bad.ok());
  EXPECT_TRUE(has_kind(bad, FailureKind::DistanceDisagreement))
      << bad.to_string();
  // On the diagonal both formulas agree, so the impostor passes there.
  EXPECT_TRUE(driver.check(Word(2, {0, 1, 1}), Word(2, {0, 1, 1})).ok());
}

// A wrong-path oracle: claims the right distance but walks to the wrong
// vertex (and, for x == y, emits a length-mismatched loop).
class WrongPathOracle final : public RouteOracle {
 public:
  std::string_view name() const override { return "wrong-path"; }
  int distance(const Word& x, const Word& y) override {
    return undirected_distance(x, y);
  }
  std::optional<RoutingPath> route(const Word& x, const Word& y) override {
    RoutingPath path;
    for (int i = 0; i < undirected_distance(x, y); ++i) {
      path.push({ShiftType::Left, 0});  // always insert 0: usually wrong
    }
    return path;
  }
};

TEST(Conformance, CatchesAnInjectedPathBug) {
  OracleSet set = OracleSet::debruijn(2, 4, Orientation::Undirected);
  set.add_oracle(std::make_unique<WrongPathOracle>());
  const Conformance driver(set);
  const PairReport bad =
      driver.check(Word(2, {0, 0, 0, 0}), Word(2, {1, 1, 1, 1}));
  EXPECT_FALSE(bad.ok());
  EXPECT_TRUE(has_kind(bad, FailureKind::WrongEndpoint)) << bad.to_string();
}

// An illegal-move oracle for the directed network: right shifts are not
// edges of the directed DG(d,k).
class RightShiftOracle final : public RouteOracle {
 public:
  std::string_view name() const override { return "right-shifter"; }
  int distance(const Word& x, const Word& y) override {
    return directed_distance(x, y);
  }
  std::optional<RoutingPath> route(const Word& x, const Word& y) override {
    RoutingPath path;
    for (int i = 0; i < directed_distance(x, y); ++i) {
      path.push({ShiftType::Right, 0});
    }
    return path;
  }
};

TEST(Conformance, CatchesAnIllegalHopInTheDirectedNetwork) {
  OracleSet set = OracleSet::debruijn(2, 3, Orientation::Directed);
  set.add_oracle(std::make_unique<RightShiftOracle>());
  const PairReport bad =
      Conformance(set).check(Word(2, {0, 1, 0}), Word(2, {1, 1, 1}));
  EXPECT_FALSE(bad.ok());
  EXPECT_TRUE(has_kind(bad, FailureKind::IllegalHop)) << bad.to_string();
}

// A shape-violating oracle: reaches Y optimally via BFS yet claims to be a
// Theorem 2 formula router. BFS paths in the undirected graph are optimal
// but need not be three-block, so on some pair the shape check must fire.
class ZigzagClaimOracle final : public RouteOracle {
 public:
  std::string_view name() const override { return "zigzag-claimant"; }
  int distance(const Word& x, const Word& y) override {
    return undirected_distance(x, y);
  }
  std::optional<RoutingPath> route(const Word& x, const Word& y) override {
    // L a R b L c R e ... zig-zag of the right length; for the all-pairs
    // sweep below only the specific pair matters.
    RoutingPath path;
    const int dist = undirected_distance(x, y);
    for (int i = 0; i < dist; ++i) {
      path.push({i % 2 == 0 ? ShiftType::Left : ShiftType::Right, kWildcard});
    }
    return path;
  }
  bool emits_three_block() const override { return true; }
};

TEST(Conformance, ShapeCheckRejectsFourRunPaths) {
  OracleSet set = OracleSet::debruijn(2, 6, Orientation::Undirected);
  set.add_oracle(std::make_unique<ZigzagClaimOracle>());
  const Conformance driver(set);
  bool shape_violation_seen = false;
  for (std::uint64_t xi = 0; xi < set.vertex_count() && !shape_violation_seen;
       ++xi) {
    for (std::uint64_t yi = 0; yi < set.vertex_count(); ++yi) {
      const PairReport report = driver.check(Word::from_rank(2, 6, xi),
                                             Word::from_rank(2, 6, yi));
      if (has_kind(report, FailureKind::ShapeViolation)) {
        shape_violation_seen = true;
        break;
      }
    }
  }
  EXPECT_TRUE(shape_violation_seen)
      << "a >= 4-hop zig-zag must violate the three-block shape somewhere";
}

TEST(Shrinker, MinimizesADirectedVsUndirectedDisagreement) {
  // Predicate: the two distance notions disagree. The smallest such pair
  // over any alphabet is k = 2, d = 2 (at k = 1 both formulas coincide).
  const FailPredicate disagree = [](const Word& x, const Word& y) {
    return directed_distance(x, y) != undirected_distance(x, y);
  };
  const Word x0(4, {0, 1, 1, 1, 1, 1});
  const Word y0(4, {0, 0, 1, 1, 1, 1});  // right shift of x0: undirected 1
  ASSERT_TRUE(disagree(x0, y0));
  const ShrinkResult result = shrink_pair(x0, y0, disagree);
  EXPECT_TRUE(disagree(result.x, result.y));
  EXPECT_EQ(result.x.length(), 2u);
  EXPECT_EQ(result.x.radix(), 2u);
  EXPECT_GT(result.reductions, 0);
  EXPECT_GE(result.candidates_tried, result.reductions);
}

TEST(Shrinker, RequiresAFailingStart) {
  const FailPredicate never = [](const Word&, const Word&) { return false; };
  EXPECT_THROW(shrink_pair(Word(2, {0, 1}), Word(2, {1, 0}), never),
               ContractViolation);
}

TEST(Shrinker, SnippetNamesTheRightOracleSet) {
  const ShrinkResult undirected{Word(2, {0, 1}), Word(2, {0, 0}), 3, 10};
  const std::string u = regression_snippet(undirected, "undirected");
  EXPECT_NE(u.find("TEST(ConformanceRegression, Undirected_D2_K2_X01_Y00)"),
            std::string::npos)
      << u;
  EXPECT_NE(u.find("corpus line: \"undirected 2 2 01 00\""), std::string::npos);
  EXPECT_NE(u.find("Orientation::Undirected"), std::string::npos);

  const std::string d = regression_snippet(undirected, "directed");
  EXPECT_NE(d.find("Orientation::Directed"), std::string::npos) << d;

  // Kautz snippets convert the word radix back to the degree, in both the
  // corpus line and the OracleSet factory call.
  const ShrinkResult kautz{Word(3, {0, 1, 0}), Word(3, {2, 1, 2}), 1, 4};
  const std::string s = regression_snippet(kautz, "kautz");
  EXPECT_NE(s.find("corpus line: \"kautz 2 3 010 212\""), std::string::npos)
      << s;
  EXPECT_NE(s.find("OracleSet::kautz(x.radix() - 1"), std::string::npos);
}

TEST(WordFamilies, SamplesHaveTheAdvertisedStructure) {
  DBN_SEEDED_RNG(rng, 4201);
  for (const WordFamily family : kAllWordFamilies) {
    for (const auto& [d, k] : dbn::testing::small_grid()) {
      const Word w = sample_word(rng, d, k, family);
      ASSERT_EQ(w.radix(), d);
      ASSERT_EQ(w.length(), k);
      if (family == WordFamily::AllEqual) {
        for (std::size_t i = 1; i < k; ++i) {
          EXPECT_EQ(w.digit(i), w.digit(0));
        }
      }
      if (family == WordFamily::Alternating) {
        for (std::size_t i = 2; i < k; ++i) {
          EXPECT_EQ(w.digit(i), w.digit(i - 2));
        }
        if (d >= 2 && k >= 2) {
          EXPECT_NE(w.digit(0), w.digit(1));
        }
      }
      if (family == WordFamily::FewDistinct) {
        std::size_t distinct = 0;
        std::vector<bool> seen(d, false);
        for (std::size_t i = 0; i < k; ++i) {
          if (!seen[w.digit(i)]) {
            seen[w.digit(i)] = true;
            ++distinct;
          }
        }
        EXPECT_LE(distinct, 2u);
      }
    }
    // Degenerate corners must not trip any family generator.
    const Word tiny = sample_word(rng, 1, 1, family);
    EXPECT_EQ(tiny, Word::zero(1, 1));
  }
}

TEST(WordFamilies, PairFamiliesRelateTheWordsAsDocumented) {
  DBN_SEEDED_RNG(rng, 4202);
  for (int trial = 0; trial < 50; ++trial) {
    const std::uint32_t d = 2 + trial % 3;
    const std::size_t k = 2 + rng.below(8);
    const auto [xe, ye] =
        sample_pair(rng, d, k, WordFamily::Uniform, PairFamily::Equal);
    EXPECT_EQ(xe, ye);
    const auto [xr, yr] =
        sample_pair(rng, d, k, WordFamily::Uniform, PairFamily::Reversal);
    EXPECT_EQ(yr, xr.reversed());
    const auto [xo, yo] =
        sample_pair(rng, d, k, WordFamily::Uniform, PairFamily::Rotation);
    bool is_rotation = false;
    for (std::size_t by = 0; by < k && !is_rotation; ++by) {
      bool all = true;
      for (std::size_t i = 0; i < k; ++i) {
        if (yo.digit(i) != xo.digit((i + by) % k)) {
          all = false;
          break;
        }
      }
      is_rotation = all;
    }
    EXPECT_TRUE(is_rotation)
        << xo.to_string() << " vs " << yo.to_string();
  }
}

TEST(Corpus, ParsesAndSerializesTheLineFormat) {
  const CorpusCase c = CorpusCase::parse("undirected 2 4 0110 1001");
  EXPECT_EQ(c.family, NetworkFamily::DeBruijnUndirected);
  EXPECT_EQ(c.d, 2u);
  EXPECT_EQ(c.k, 4u);
  EXPECT_EQ(c.word_x(), Word(2, {0, 1, 1, 0}));
  EXPECT_EQ(c.word_y(), Word(2, {1, 0, 0, 1}));
  EXPECT_EQ(c.to_line(), "undirected 2 4 0110 1001");

  // Kautz words live on the (d+1)-letter alphabet.
  const CorpusCase kc = CorpusCase::parse("kautz 2 3 010 212");
  EXPECT_EQ(kc.word_radix(), 3u);
  EXPECT_EQ(kc.word_x(), Word(3, {0, 1, 0}));

  // Digits a-z cover radices above 10.
  const CorpusCase big = CorpusCase::parse("directed 11 2 a0 0a");
  EXPECT_EQ(big.word_x(), Word(11, {10, 0}));
  EXPECT_EQ(big.to_line(), "directed 11 2 a0 0a");

  EXPECT_THROW(CorpusCase::parse("bogus 2 2 01 10"), ContractViolation);
  EXPECT_THROW(CorpusCase::parse("undirected 2 2 012 10"), ContractViolation);
  EXPECT_THROW(CorpusCase::parse("undirected 2 2 01 10 extra"),
               ContractViolation);
  EXPECT_THROW(CorpusCase::parse("undirected 2 2 01 13"), ContractViolation);
}

TEST(Fuzzer, SmokeRunIsCleanAndDeterministic) {
  FuzzOptions options;
  options.seed = 7;
  options.iterations = 400;
  // Keep the smoke run snappy: BFS only on the smallest points.
  options.oracle_options.max_bfs_vertices = 1u << 8;
  options.oracle_options.max_table_vertices = 1u << 6;
  const FuzzReport first = run_fuzz(options);
  EXPECT_TRUE(first.ok()) << first.failures.front().report;
  EXPECT_EQ(first.iterations_run, 400u);
  EXPECT_GT(first.point_coverage.size(), 5u);

  const FuzzReport second = run_fuzz(options);
  EXPECT_EQ(second.point_coverage, first.point_coverage);
}

TEST(Fuzzer, ReplayCatchesACorruptedCase) {
  // A healthy case replays clean...
  CorpusCase c = CorpusCase::parse("undirected 2 3 011 001");
  EXPECT_TRUE(replay_case(c).ok());
  // ...and replay honors the oracle gating options.
  OracleOptions no_bfs;
  no_bfs.max_bfs_vertices = 0;
  no_bfs.max_table_vertices = 0;
  EXPECT_TRUE(replay_case(c, no_bfs).ok());
}

}  // namespace
}  // namespace dbn::testkit
