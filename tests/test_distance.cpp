#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "common/rng.hpp"
#include "core/distance.hpp"
#include "debruijn/bfs.hpp"
#include "testing_util.hpp"

namespace dbn {
namespace {

using dbn::testing::DkParam;

class DistanceGrid : public ::testing::TestWithParam<DkParam> {};

TEST_P(DistanceGrid, DirectedFormulaMatchesBfsAllPairs) {
  const auto [d, k] = GetParam();
  const DeBruijnGraph g(d, k, Orientation::Directed);
  for (std::uint64_t xr = 0; xr < g.vertex_count(); ++xr) {
    const Word x = g.word(xr);
    const std::vector<int> dist = bfs_distances(g, xr);
    for (std::uint64_t yr = 0; yr < g.vertex_count(); ++yr) {
      EXPECT_EQ(directed_distance(x, g.word(yr)), dist[yr])
          << "X=" << x.to_string() << " Y=" << g.word(yr).to_string();
    }
  }
}

TEST_P(DistanceGrid, UndirectedFormulaMatchesBfsAllPairs) {
  const auto [d, k] = GetParam();
  const DeBruijnGraph g(d, k, Orientation::Undirected);
  for (std::uint64_t xr = 0; xr < g.vertex_count(); ++xr) {
    const Word x = g.word(xr);
    const std::vector<int> dist = bfs_distances(g, xr);
    for (std::uint64_t yr = 0; yr < g.vertex_count(); ++yr) {
      const Word y = g.word(yr);
      const int quadratic = undirected_distance_quadratic(x, y);
      EXPECT_EQ(quadratic, dist[yr])
          << "Theorem 2 (O(k^2) scan) X=" << x.to_string()
          << " Y=" << y.to_string();
      EXPECT_EQ(undirected_distance(x, y), quadratic)
          << "suffix-tree distance X=" << x.to_string()
          << " Y=" << y.to_string();
    }
  }
}

INSTANTIATE_TEST_SUITE_P(SmallGrid, DistanceGrid,
                         ::testing::ValuesIn(dbn::testing::small_grid()),
                         ::testing::PrintToStringParamName());

// The degenerate corners (d=1 single-vertex networks, k=1 complete-ish
// graphs) go through the same all-pairs BFS cross-check as the interior.
INSTANTIATE_TEST_SUITE_P(DegenerateGrid, DistanceGrid,
                         ::testing::ValuesIn(dbn::testing::degenerate_grid()),
                         ::testing::PrintToStringParamName());

TEST(Distance, OneLetterAlphabetIsAlwaysAtDistanceZero) {
  // DG(1,k) has the single vertex (0,...,0); both formulas must degrade
  // gracefully instead of tripping on the empty failure-function table.
  for (std::size_t k : {1u, 2u, 7u}) {
    const Word only = Word::zero(1, k);
    EXPECT_EQ(directed_distance(only, only), 0);
    EXPECT_EQ(undirected_distance(only, only), 0);
    EXPECT_EQ(undirected_distance_quadratic(only, only), 0);
  }
}

TEST(Distance, ExplicitXEqualsYAcrossGrids) {
  for (const auto& grids :
       {dbn::testing::small_grid(), dbn::testing::degenerate_grid()}) {
    for (const auto& [d, k] : grids) {
      for (std::uint64_t r = 0; r < std::min<std::uint64_t>(
                                        Word::vertex_count(d, k), 64);
           ++r) {
        const Word x = Word::from_rank(d, k, r);
        EXPECT_EQ(directed_distance(x, x), 0) << "d=" << d << " k=" << k;
        EXPECT_EQ(undirected_distance(x, x), 0) << "d=" << d << " k=" << k;
      }
    }
  }
}

TEST(Distance, LinearAndQuadraticAgreeOnLargeRandomWords) {
  DBN_SEEDED_RNG(rng, 2024);
  for (const auto& [d, k] : dbn::testing::large_grid()) {
    for (int trial = 0; trial < 40; ++trial) {
      const Word x = testing::random_word(rng, d, k);
      const Word y = testing::random_word(rng, d, k);
      EXPECT_EQ(undirected_distance(x, y), undirected_distance_quadratic(x, y))
          << "d=" << d << " k=" << k << " X=" << x.to_string()
          << " Y=" << y.to_string();
    }
  }
}

TEST(Distance, UndirectedSymmetryOnRandomWords) {
  DBN_SEEDED_RNG(rng, 2025);
  for (int trial = 0; trial < 300; ++trial) {
    const std::uint32_t d = 2 + trial % 3;
    const std::size_t k = 1 + rng.below(24);
    const Word x = testing::random_word(rng, d, k);
    const Word y = testing::random_word(rng, d, k);
    EXPECT_EQ(undirected_distance(x, y), undirected_distance(y, x))
        << "X=" << x.to_string() << " Y=" << y.to_string();
  }
}

TEST(Distance, UndirectedNeverExceedsDirected) {
  DBN_SEEDED_RNG(rng, 2026);
  for (int trial = 0; trial < 300; ++trial) {
    const std::uint32_t d = 2 + trial % 3;
    const std::size_t k = 1 + rng.below(16);
    const Word x = testing::random_word(rng, d, k);
    const Word y = testing::random_word(rng, d, k);
    EXPECT_LE(undirected_distance(x, y), directed_distance(x, y));
  }
}

TEST(Distance, ZeroIffEqual) {
  DBN_SEEDED_RNG(rng, 2027);
  for (int trial = 0; trial < 200; ++trial) {
    const std::uint32_t d = 2 + trial % 4;
    const std::size_t k = 1 + rng.below(12);
    const Word x = testing::random_word(rng, d, k);
    const Word y = testing::random_word(rng, d, k);
    EXPECT_EQ(directed_distance(x, x), 0);
    EXPECT_EQ(undirected_distance(x, x), 0);
    if (!(x == y)) {
      EXPECT_GT(directed_distance(x, y), 0);
      EXPECT_GT(undirected_distance(x, y), 0);
    }
  }
}

TEST(Distance, PaperExampleZerosToOnes) {
  // Section 2: D((0,...,0), (1,...,1)) = k in both variants.
  for (std::size_t k : {1u, 4u, 9u}) {
    const Word zeros = Word::zero(2, k);
    const Word ones(2, std::vector<Digit>(k, 1));
    EXPECT_EQ(directed_distance(zeros, ones), static_cast<int>(k));
    EXPECT_EQ(undirected_distance(zeros, ones), static_cast<int>(k));
  }
}

TEST(Distance, ClosedFormEquation5) {
  // delta(2,k) = k - 1 + 2^-k (paper's worked special case).
  for (std::size_t k = 1; k <= 20; ++k) {
    EXPECT_NEAR(directed_average_distance_closed_form(2, k),
                static_cast<double>(k) - 1.0 + std::pow(0.5, k), 1e-12);
  }
}

TEST(Distance, ExactHistogramMatchesBfsEnumeration) {
  for (const auto& [d, k] : dbn::testing::small_grid()) {
    if (Word::vertex_count(d, k) > 300) {
      continue;
    }
    const DeBruijnGraph g(d, k, Orientation::Directed);
    std::vector<std::uint64_t> histogram(k + 1, 0);
    for (std::uint64_t xr = 0; xr < g.vertex_count(); ++xr) {
      const std::vector<int> dist = bfs_distances(g, xr);
      for (std::uint64_t yr = 0; yr < g.vertex_count(); ++yr) {
        ++histogram[static_cast<std::size_t>(dist[yr])];
      }
    }
    EXPECT_EQ(histogram, directed_distance_histogram_exact(d, k))
        << "d=" << d << " k=" << k;
  }
}

TEST(Distance, ExactAverageMatchesBfsAverage) {
  for (const auto& [d, k] : dbn::testing::small_grid()) {
    const DeBruijnGraph g(d, k, Orientation::Directed);
    EXPECT_NEAR(average_distance(g), directed_average_distance_exact(d, k),
                1e-9)
        << "d=" << d << " k=" << k;
  }
}

TEST(Distance, Equation5IsAnUpperBoundExactOnlyForK1) {
  // Reproduction finding (EXPERIMENTS.md, E5): the paper's equation (5)
  // assumes overlap events are nested and therefore slightly overestimates
  // the true average for k >= 2.
  for (std::uint32_t d : {2u, 3u, 5u}) {
    EXPECT_NEAR(directed_average_distance_exact(d, 1),
                directed_average_distance_closed_form(d, 1), 1e-12);
  }
  // Hand-checked counterexample: DG(2,2) has average 18/16 = 1.125, while
  // equation (5) gives 1.25.
  EXPECT_NEAR(directed_average_distance_exact(2, 2), 1.125, 1e-12);
  EXPECT_NEAR(directed_average_distance_closed_form(2, 2), 1.25, 1e-12);
  for (const auto& [d, k] : dbn::testing::small_grid()) {
    const double exact = directed_average_distance_exact(d, k);
    const double eq5 = directed_average_distance_closed_form(d, k);
    EXPECT_LE(exact, eq5 + 1e-12) << "d=" << d << " k=" << k;
    // Measured: the gap saturates near 0.62 for d=2 and shrinks with d
    // (~0.18 for d=3, ~0.08 for d=4); bound it by 1.4/d.
    EXPECT_LT(eq5 - exact, 1.4 / d) << "d=" << d << " k=" << k;
  }
}

}  // namespace
}  // namespace dbn
