// Replays the checked-in wire reproducers (tests/corpus/wire/*.bin)
// through the shared serve-frame fuzz battery (testkit/fuzz_targets.hpp).
// Inputs the fuzzers find get minimized and committed here so regressions
// stay pinned even in builds that never run the fuzz/ harnesses; the same
// files double as libFuzzer seeds via fuzz/corpus/serve_frame.
#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <iterator>
#include <string>
#include <vector>

#include "serve/protocol.hpp"
#include "testkit/fuzz_targets.hpp"

namespace dbn::testkit {
namespace {

std::vector<std::string> list_wire_files() {
  std::vector<std::string> files;
  const std::string dir = std::string(DBN_CORPUS_DIR) + "/wire";
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    if (entry.is_regular_file() && entry.path().extension() == ".bin") {
      files.push_back(entry.path().string());
    }
  }
  std::sort(files.begin(), files.end());
  return files;
}

std::string read_bytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  return std::string(std::istreambuf_iterator<char>(in),
                     std::istreambuf_iterator<char>());
}

TEST(WireCorpus, SeedInputsArePresent) {
  EXPECT_GE(list_wire_files().size(), 10u)
      << "the framing-edge and round-trip seeds must exist";
}

TEST(WireCorpus, EveryInputHoldsEveryFramingAndCodecInvariant) {
  for (const std::string& file : list_wire_files()) {
    SCOPED_TRACE(file);
    const std::string bytes = read_bytes(file);
    const std::vector<std::string> violations =
        check_serve_frame_bytes(bytes);
    std::string joined;
    for (const std::string& v : violations) {
      joined += v + "\n";
    }
    EXPECT_TRUE(violations.empty()) << joined;
  }
}

TEST(WireCorpus, ZeroLengthFrameSeedPoisonsTheReader) {
  // Pin the satellite fix in corpus form as well as unit form: the
  // zero_length_frame seed must exist and must poison a FrameReader.
  const std::string path =
      std::string(DBN_CORPUS_DIR) + "/wire/zero_length_frame.bin";
  const std::string bytes = read_bytes(path);
  ASSERT_EQ(bytes.size(), 4u);
  serve::FrameReader reader;
  reader.feed(bytes);
  std::string payload;
  EXPECT_EQ(reader.next(payload), serve::FrameReader::Result::Error);
}

}  // namespace
}  // namespace dbn::testkit
