// Contract macros at level 2 (audit): everything from level 1 plus
// DBN_AUDIT, the tier for O(k)-and-worse re-verification that sanitizer
// builds enable by default. Pinned here so the audit path is covered even
// in a default (level 1) build of the test suite.
#ifdef DBN_CONTRACT_LEVEL
#undef DBN_CONTRACT_LEVEL
#endif
#define DBN_CONTRACT_LEVEL 2

#include "common/contract.hpp"

#include <gtest/gtest.h>

#include <string>

namespace {

TEST(ContractAuditLevel, LevelIsTwo) {
  EXPECT_EQ(dbn::contract_level(), 2);
  EXPECT_EQ(DBN_AUDIT_ENABLED, 1);
}

TEST(ContractAuditLevel, BaseMacrosStillActive) {
  EXPECT_THROW(DBN_REQUIRE(false, ""), dbn::ContractViolation);
  EXPECT_THROW(DBN_ENSURE(false, ""), dbn::ContractViolation);
  EXPECT_THROW(DBN_ASSERT(false, ""), dbn::ContractViolation);
}

TEST(ContractAuditLevel, AuditThrowsWithItsOwnKind) {
  try {
    DBN_AUDIT(false, "expensive recheck failed");
    FAIL() << "must throw";
  } catch (const dbn::ContractViolation& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("audit"), std::string::npos) << what;
    EXPECT_NE(what.find("expensive recheck failed"), std::string::npos)
        << what;
  }
}

TEST(ContractAuditLevel, AuditEvaluatesItsCondition) {
  int calls = 0;
  DBN_AUDIT(++calls > 0, "audit runs at level 2");
  EXPECT_EQ(calls, 1);
}

TEST(ContractAuditLevel, AuditEnabledGuardsSetupCode) {
  // The documented pattern: expensive witness-recomputation buffers are only
  // built when the audit checks that consume them are compiled in.
  bool prepared = false;
  if (DBN_AUDIT_ENABLED) {
    prepared = true;
  }
  DBN_AUDIT(prepared, "setup gated on DBN_AUDIT_ENABLED must have run");
  EXPECT_TRUE(prepared);
}

}  // namespace
