#include <gtest/gtest.h>

#include <algorithm>

#include "common/contract.hpp"
#include "common/rng.hpp"
#include "net/sort_emulation.hpp"
#include "testing_util.hpp"

namespace dbn::net {
namespace {

TEST(SortEmulation, SortsRandomInputs) {
  Rng rng(61);
  for (const auto& [d, k] : std::vector<std::pair<std::uint32_t, std::size_t>>{
           {2, 3}, {2, 5}, {2, 7}, {3, 3}, {4, 2}}) {
    const std::uint64_t n = Word::vertex_count(d, k);
    std::vector<std::uint64_t> values(n);
    for (auto& v : values) {
      v = rng.below(1000);
    }
    std::vector<std::uint64_t> expected = values;
    std::sort(expected.begin(), expected.end());
    const SortEmulationResult result =
        odd_even_transposition_sort(d, k, values);
    EXPECT_EQ(result.sorted, expected) << "d=" << d << " k=" << k;
    EXPECT_LE(result.rounds, n + 2);
    EXPECT_EQ(result.site_of_position.size(), n);
  }
}

TEST(SortEmulation, SortedInputNeedsNoExchanges) {
  std::vector<std::uint64_t> values(32);
  for (std::size_t i = 0; i < values.size(); ++i) {
    values[i] = i;
  }
  const SortEmulationResult result = odd_even_transposition_sort(2, 5, values);
  EXPECT_EQ(result.exchanges, 0u);
}

TEST(SortEmulation, ReverseInputIsTheWorstCase) {
  std::vector<std::uint64_t> values(32);
  for (std::size_t i = 0; i < values.size(); ++i) {
    values[i] = 31 - i;
  }
  const SortEmulationResult result = odd_even_transposition_sort(2, 5, values);
  for (std::size_t i = 0; i < values.size(); ++i) {
    EXPECT_EQ(result.sorted[i], i);
  }
  // Worst case uses close to N rounds and N^2/2-ish exchanges.
  EXPECT_GE(result.rounds, 30u);
  EXPECT_EQ(result.exchanges, 31u * 32 / 2);
}

TEST(SortEmulation, DuplicatesAreHandled) {
  std::vector<std::uint64_t> values = {5, 1, 5, 1, 5, 1, 5, 1};
  const SortEmulationResult result = odd_even_transposition_sort(2, 3, values);
  EXPECT_EQ(result.sorted,
            (std::vector<std::uint64_t>{1, 1, 1, 1, 5, 5, 5, 5}));
}

TEST(SortEmulation, RejectsWrongInputSize) {
  EXPECT_THROW(odd_even_transposition_sort(2, 3, std::vector<std::uint64_t>(7)),
               ContractViolation);
}

}  // namespace
}  // namespace dbn::net
