#include <gtest/gtest.h>

#include "core/routers.hpp"
#include "net/simulator.hpp"
#include "testing_util.hpp"

namespace dbn::net {
namespace {

TEST(Traces, RecordedVisitsMatchThePath) {
  SimConfig config;
  config.radix = 2;
  config.k = 5;
  config.record_traces = true;
  Simulator sim(config);
  const Word src = Word::from_rank(2, 5, 3);
  const Word dst = Word::from_rank(2, 5, 28);
  const RoutingPath path = route_bidirectional_mp(src, dst);
  sim.inject(0.0, Message(ControlCode::Data, src, dst, path));
  sim.run();
  ASSERT_EQ(sim.traces().size(), 1u);
  const auto& visits = sim.traces()[0].visits;
  ASSERT_EQ(visits.size(), path.length() + 1);
  EXPECT_EQ(visits.front().second, src.rank());
  EXPECT_EQ(visits.back().second, dst.rank());
  Word at = src;
  for (std::size_t i = 0; i < path.length(); ++i) {
    const Hop& h = path.hop(i);
    at = h.type == ShiftType::Left ? at.left_shift(h.digit)
                                   : at.right_shift(h.digit);
    EXPECT_EQ(visits[i + 1].second, at.rank());
    EXPECT_GE(visits[i + 1].first, visits[i].first);
  }
}

TEST(Traces, HopByHopTracesEndAtDestination) {
  SimConfig config;
  config.radix = 2;
  config.k = 5;
  config.forwarding = ForwardingMode::HopByHop;
  config.record_traces = true;
  Simulator sim(config);
  Rng rng(71);
  for (int i = 0; i < 20; ++i) {
    const Word src = testing::random_word(rng, 2, 5);
    const Word dst = testing::random_word(rng, 2, 5);
    sim.inject(static_cast<double>(i), Message(ControlCode::Data, src, dst,
                                               RoutingPath{}));
  }
  sim.run();
  ASSERT_EQ(sim.traces().size(), 20u);
  for (const auto& trace : sim.traces()) {
    ASSERT_FALSE(trace.visits.empty());
    // Visits are distinct sites (greedy never revisits: distance strictly
    // decreases).
    for (std::size_t a = 0; a < trace.visits.size(); ++a) {
      for (std::size_t b = a + 1; b < trace.visits.size(); ++b) {
        EXPECT_NE(trace.visits[a].second, trace.visits[b].second);
      }
    }
  }
}

TEST(Traces, DisabledByDefault) {
  SimConfig config;
  Simulator sim(config);
  const Word w = Word::from_rank(2, 4, 5);
  sim.inject(0.0, Message(ControlCode::Data, w, w, RoutingPath{}));
  sim.run();
  EXPECT_TRUE(sim.traces().empty());
}

}  // namespace
}  // namespace dbn::net
