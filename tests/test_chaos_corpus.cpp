// Replays the checked-in chaos reproducers (tests/corpus/chaos/*.chaos)
// through the full invariant battery, determinism included. Shrunk fuzz
// failures get committed here so regressions stay pinned; the same corpus
// is replayed by `dbn_chaos --replay` in the chaos_corpus_replay ctest.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "testkit/chaos.hpp"

namespace dbn::testkit {
namespace {

std::string corpus_dir() { return std::string(DBN_CORPUS_DIR) + "/chaos"; }

TEST(ChaosCorpus, SeedScenariosArePresent) {
  const std::vector<std::string> files = list_chaos_files(corpus_dir());
  EXPECT_GE(files.size(), 5u)
      << "the fault-cluster, link-flap, partition, saturation-overload and "
         "layer-partition seeds must exist";
}

TEST(ChaosCorpus, EveryScenarioRoundTripsThroughTheTextFormat) {
  for (const std::string& file : list_chaos_files(corpus_dir())) {
    SCOPED_TRACE(file);
    const ChaosScenario scenario = load_chaos_file(file);
    const std::string text = scenario.to_text();
    EXPECT_EQ(ChaosScenario::parse(text).to_text(), text);
  }
}

TEST(ChaosCorpus, EveryScenarioHoldsEveryInvariant) {
  const std::vector<std::string> files = list_chaos_files(corpus_dir());
  const std::vector<std::string> violations = replay_chaos_files(files);
  std::string joined;
  for (const std::string& v : violations) {
    joined += v + "\n";
  }
  EXPECT_TRUE(violations.empty()) << joined;
}

TEST(ChaosCorpus, ScenariosExerciseDistinctFailureModes) {
  // The seeds are not interchangeable: at least one scenario must abandon
  // transfers (the unreachable destination) and at least one must recover
  // everything (flap / healed partition).
  bool saw_abandonment = false;
  bool saw_full_recovery = false;
  for (const std::string& file : list_chaos_files(corpus_dir())) {
    const ChaosRunResult result = run_scenario(load_chaos_file(file));
    ASSERT_TRUE(result.ok()) << file;
    saw_abandonment = saw_abandonment || result.report.abandoned > 0;
    saw_full_recovery =
        saw_full_recovery || (result.report.abandoned == 0 &&
                              result.report.retransmissions > 0 &&
                              result.report.completed > 0);
  }
  EXPECT_TRUE(saw_abandonment);
  EXPECT_TRUE(saw_full_recovery);
}

TEST(ChaosCorpus, SaturationSeedsExerciseTheAdaptivePolicies) {
  // The two saturation seeds must keep producing the failure modes they
  // were written for — if a simulator change makes the overload scenario
  // stop overflowing (or the layer partition stop burning TTL), the
  // scenario has silently gone stale and no longer guards anything.
  bool saw_overflow_under_deflect = false;
  bool saw_ttl_under_layer = false;
  for (const std::string& file : list_chaos_files(corpus_dir())) {
    const ChaosScenario scenario = load_chaos_file(file);
    if (scenario.policy == ChaosPolicy::SourceRouted) {
      continue;
    }
    SCOPED_TRACE(file);
    const ChaosRunResult result = run_deterministically(scenario);
    ASSERT_TRUE(result.ok()) << file;
    if (scenario.policy == ChaosPolicy::Deflect &&
        scenario.queue_capacity > 0) {
      saw_overflow_under_deflect = saw_overflow_under_deflect ||
                                   result.stats.dropped_overflow > 0;
    }
    if (scenario.policy == ChaosPolicy::Layer) {
      saw_ttl_under_layer =
          saw_ttl_under_layer || result.stats.dropped_ttl > 0;
    }
  }
  EXPECT_TRUE(saw_overflow_under_deflect)
      << "saturation_overload.chaos must shed load as overflow drops";
  EXPECT_TRUE(saw_ttl_under_layer)
      << "layer_partition.chaos must exhaust adaptive TTLs";
}

TEST(ChaosCorpus, PolicyOverrideReplaysTheCorpusUnderEveryPolicy) {
  // Any scenario must hold every invariant under any forwarding policy —
  // the override is how CI sweeps old seeds through new policies without
  // duplicating files.
  const std::vector<std::string> files = list_chaos_files(corpus_dir());
  for (const ChaosPolicy policy :
       {ChaosPolicy::Greedy, ChaosPolicy::Deflect, ChaosPolicy::Layer}) {
    SCOPED_TRACE(chaos_policy_name(policy));
    const std::vector<std::string> violations =
        replay_chaos_files(files, nullptr, policy);
    std::string joined;
    for (const std::string& v : violations) {
      joined += v + "\n";
    }
    EXPECT_TRUE(violations.empty()) << joined;
  }
}

}  // namespace
}  // namespace dbn::testkit
