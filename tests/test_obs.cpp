// Tests for the observability subsystem (src/obs/): metrics registry
// exactness, histogram bucket semantics, trace determinism, the Theorem 2
// block segmentation carried on route spans, and the no-sink fast path.
#include <atomic>
#include <cstdlib>
#include <new>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "core/batch_route_engine.hpp"
#include "core/route_engine.hpp"
#include "core/routers.hpp"
#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "testkit/conformance.hpp"

namespace {

using namespace dbn;

// ---------------------------------------------------------------------------
// Allocation counting for the no-sink fast-path test. The replacement
// operators delegate to malloc/free and only bump the counter while a test
// window is open, so the rest of the binary is unaffected.

std::atomic<bool> g_count_allocations{false};
std::atomic<std::uint64_t> g_allocation_count{0};

struct AllocationWindow {
  AllocationWindow() {
    g_allocation_count.store(0, std::memory_order_relaxed);
    g_count_allocations.store(true, std::memory_order_relaxed);
  }
  ~AllocationWindow() {
    g_count_allocations.store(false, std::memory_order_relaxed);
  }
  std::uint64_t count() const {
    return g_allocation_count.load(std::memory_order_relaxed);
  }
};

}  // namespace

// GCC pairs the inlined replacement operators with the malloc/free inside
// them and reports a spurious new/delete mismatch; the pairing is in fact
// consistent (every replaced operator delegates to malloc/free).
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"
#endif

void* operator new(std::size_t size) {
  if (g_count_allocations.load(std::memory_order_relaxed)) {
    g_allocation_count.fetch_add(1, std::memory_order_relaxed);
  }
  void* p = std::malloc(size == 0 ? 1 : size);
  if (p == nullptr) {
    throw std::bad_alloc();
  }
  return p;
}

void* operator new[](std::size_t size) { return ::operator new(size); }

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic pop
#endif

namespace {

// ---------------------------------------------------------------------------
// Metrics

TEST(Metrics, CounterAccumulatesAndDedups) {
  obs::MetricsRegistry registry;
  obs::Counter a = registry.counter("queries");
  obs::Counter b = registry.counter("queries");  // same metric, second handle
  a.inc();
  a.inc(4);
  b.inc(5);
  const obs::MetricsSnapshot snap = registry.snapshot();
  const obs::MetricSnapshot* m = snap.find("queries");
  ASSERT_NE(m, nullptr);
  EXPECT_EQ(m->kind, obs::MetricKind::Counter);
  EXPECT_EQ(m->count, 10u);
  EXPECT_EQ(registry.metric_count(), 1u);
}

TEST(Metrics, InertHandlesAreNoOps) {
  obs::Counter counter;
  obs::Gauge gauge;
  obs::Histogram histogram;
  EXPECT_FALSE(static_cast<bool>(counter));
  counter.inc();
  gauge.set(7);
  histogram.observe(1.0);  // must not crash
}

TEST(Metrics, GaugeLastSetWins) {
  obs::MetricsRegistry registry;
  obs::Gauge g = registry.gauge("depth");
  g.set(10);
  g.add(-3);
  const obs::MetricsSnapshot snap = registry.snapshot();
  const obs::MetricSnapshot* m = snap.find("depth");
  ASSERT_NE(m, nullptr);
  EXPECT_EQ(m->kind, obs::MetricKind::Gauge);
  EXPECT_EQ(m->value, 7);
}

TEST(Metrics, HistogramBucketBoundariesAreUpperInclusive) {
  obs::MetricsRegistry registry;
  obs::Histogram h = registry.histogram("lat", {1.0, 2.0, 4.0});
  // bucket 0: v <= 1; bucket 1: 1 < v <= 2; bucket 2: 2 < v <= 4;
  // bucket 3 (overflow): v > 4.
  h.observe(0.5);
  h.observe(1.0);  // boundary -> bucket 0
  h.observe(1.5);
  h.observe(2.0);  // boundary -> bucket 1
  h.observe(4.0);  // boundary -> bucket 2
  h.observe(4.0001);
  h.observe(100.0);
  const obs::MetricsSnapshot snap = registry.snapshot();
  const obs::MetricSnapshot* m = snap.find("lat");
  ASSERT_NE(m, nullptr);
  EXPECT_EQ(m->kind, obs::MetricKind::Histogram);
  ASSERT_EQ(m->buckets.size(), 4u);
  EXPECT_EQ(m->buckets[0], 2u);
  EXPECT_EQ(m->buckets[1], 2u);
  EXPECT_EQ(m->buckets[2], 1u);
  EXPECT_EQ(m->buckets[3], 2u);
  EXPECT_EQ(m->count, 7u);
  EXPECT_NEAR(m->sum, 0.5 + 1.0 + 1.5 + 2.0 + 4.0 + 4.0001 + 100.0, 1e-9);
  EXPECT_NEAR(m->mean(), m->sum / 7.0, 1e-12);
}

TEST(Metrics, ConcurrentCounterMergeIsExact) {
  obs::MetricsRegistry registry;
  obs::Counter shared = registry.counter("shared");
  obs::Histogram histogram = registry.histogram("dist", {10.0, 100.0});
  constexpr int kThreads = 8;
  constexpr std::uint64_t kPerThread = 20000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&registry, shared, histogram, t]() mutable {
      obs::Counter own =
          registry.counter("own." + std::to_string(t));
      for (std::uint64_t i = 0; i < kPerThread; ++i) {
        shared.inc();
        own.inc();
        histogram.observe(static_cast<double>(i % 200));
      }
    });
  }
  for (std::thread& t : threads) {
    t.join();
  }
  const obs::MetricsSnapshot snap = registry.snapshot();
  const obs::MetricSnapshot* m = snap.find("shared");
  ASSERT_NE(m, nullptr);
  EXPECT_EQ(m->count, kThreads * kPerThread);
  for (int t = 0; t < kThreads; ++t) {
    const obs::MetricSnapshot* own = snap.find("own." + std::to_string(t));
    ASSERT_NE(own, nullptr);
    EXPECT_EQ(own->count, kPerThread);
  }
  const obs::MetricSnapshot* h = snap.find("dist");
  ASSERT_NE(h, nullptr);
  EXPECT_EQ(h->count, kThreads * kPerThread);
  // Each thread observes 0..199 cycling: 11 values <= 10, 90 in (10, 100],
  // 99 above, exactly kPerThread/200 full cycles each.
  const std::uint64_t cycles = kThreads * kPerThread / 200;
  ASSERT_EQ(h->buckets.size(), 3u);
  EXPECT_EQ(h->buckets[0], cycles * 11);
  EXPECT_EQ(h->buckets[1], cycles * 90);
  EXPECT_EQ(h->buckets[2], cycles * 99);
}

TEST(Metrics, ResetZeroesButKeepsRegistrations) {
  obs::MetricsRegistry registry;
  obs::Counter c = registry.counter("c");
  obs::Gauge g = registry.gauge("g");
  c.inc(3);
  g.set(5);
  registry.reset();
  c.inc();
  const obs::MetricsSnapshot snap = registry.snapshot();
  EXPECT_EQ(snap.find("c")->count, 1u);
  EXPECT_EQ(snap.find("g")->value, 0);
  EXPECT_EQ(registry.metric_count(), 2u);
}

TEST(Metrics, SnapshotJsonIsDeterministicAndSorted) {
  obs::MetricsRegistry registry;
  registry.counter("zz").inc(1);
  registry.counter("aa").inc(2);
  registry.histogram("mm", {1.0}).observe(0.5);
  const std::string first = registry.snapshot().to_json();
  const std::string second = registry.snapshot().to_json();
  EXPECT_EQ(first, second);
  EXPECT_NE(first.find("\"schema\":\"metrics/1\""), std::string::npos);
  // Sorted by name: aa before mm before zz.
  EXPECT_LT(first.find("\"aa\""), first.find("\"mm\""));
  EXPECT_LT(first.find("\"mm\""), first.find("\"zz\""));
}

TEST(Metrics, SummaryMatchesClosedForm) {
  obs::Summary summary;
  for (const double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) {
    summary.observe(v);
  }
  EXPECT_DOUBLE_EQ(summary.mean(), 5.0);
  EXPECT_DOUBLE_EQ(summary.variance(), 4.0);
  EXPECT_DOUBLE_EQ(summary.coefficient_of_variation(), 2.0 / 5.0);
  EXPECT_EQ(obs::Summary{}.coefficient_of_variation(), 0.0);
}

TEST(Json, EscapeAndNumberFormat) {
  EXPECT_EQ(obs::json_escape("a\"b\\c\n"), "a\\\"b\\\\c\\n");
  EXPECT_EQ(obs::json_escape(std::string_view("x\x01y", 3)), "x\\u0001y");
  EXPECT_EQ(obs::json_number(4.0), "4");
  EXPECT_EQ(obs::json_number(0.5), "0.5");
  const std::string third = obs::json_number(1.0 / 3.0);
  EXPECT_DOUBLE_EQ(std::stod(third), 1.0 / 3.0);  // round-trips exactly
}

// ---------------------------------------------------------------------------
// Tracing

/// Installs a sink for one scope (and guarantees removal on exit).
struct SinkScope {
  explicit SinkScope(obs::TraceSink* sink) { obs::set_trace_sink(sink); }
  ~SinkScope() { obs::set_trace_sink(nullptr); }
};

TEST(Trace, DisabledByDefault) {
  EXPECT_FALSE(obs::tracing_enabled());
  obs::Span span = obs::Span::begin("x", "y");
  EXPECT_FALSE(static_cast<bool>(span));
  EXPECT_EQ(span.id(), 0u);
  span.instant("child", 0.0);
  span.end(1.0);  // all no-ops
}

TEST(Trace, SpanArgsRideOnEndEvent) {
  obs::MemoryTraceSink memory;
  SinkScope scope(&memory);
  {
    obs::Span span = obs::Span::begin("work", "test");
    span.arg(obs::targ("answer", 42));
    span.instant("tick", 1.0, {obs::targ("i", 0)});
    span.end(2.0);
  }
  const std::vector<obs::TraceEvent> events = memory.events();
  ASSERT_EQ(events.size(), 3u);
  EXPECT_EQ(events[0].phase, obs::TracePhase::Begin);
  EXPECT_TRUE(events[0].args.empty());
  EXPECT_EQ(events[1].phase, obs::TracePhase::Instant);
  EXPECT_EQ(events[1].span, events[0].span);
  EXPECT_EQ(events[2].phase, obs::TracePhase::End);
  ASSERT_EQ(events[2].args.size(), 1u);
  EXPECT_EQ(events[2].args[0].key, "answer");
  EXPECT_EQ(events[2].args[0].value, "42");
  EXPECT_TRUE(events[2].args[0].numeric);
}

TEST(Trace, NdjsonIsByteIdenticalAcrossRuns) {
  const Word x = Word(3, {1, 0, 1, 2, 0, 0});
  const Word y = Word(3, {2, 2, 0, 1, 2, 2});
  const auto run_once = [&] {
    std::ostringstream out;
    obs::NdjsonTraceSink sink(out);
    SinkScope scope(&sink);
    BidirectionalRouteEngine engine(6);
    RoutingPath path;
    engine.route_into(x, y, WildcardMode::Concrete, path);
    route_bidirectional_mp(x, y, WildcardMode::Concrete);
    return out.str();
  };
  const std::string first = run_once();
  const std::string second = run_once();
  EXPECT_FALSE(first.empty());
  EXPECT_EQ(first, second);  // span renumbering makes reruns byte-identical
  EXPECT_EQ(first.substr(0, first.find('\n')), obs::ndjson_header());
}

/// Collects the route span emitted for (x, y) by the engine.
struct RouteTrace {
  obs::TraceEvent end;
  std::vector<obs::TraceEvent> hops;
  RoutingPath path;
};

RouteTrace traced_route(const Word& x, const Word& y) {
  obs::MemoryTraceSink memory;
  RouteTrace result;
  {
    SinkScope scope(&memory);
    BidirectionalRouteEngine engine(x.length());
    engine.route_into(x, y, WildcardMode::Concrete, result.path);
  }
  for (const obs::TraceEvent& event : memory.events()) {
    if (event.phase == obs::TracePhase::End && event.name == "route") {
      result.end = event;
    } else if (event.phase == obs::TracePhase::Instant &&
               event.name == "hop") {
      result.hops.push_back(event);
    }
  }
  return result;
}

const std::string* find_arg(const std::vector<obs::TraceArg>& args,
                            std::string_view key) {
  for (const obs::TraceArg& a : args) {
    if (a.key == key) {
      return &a.value;
    }
  }
  return nullptr;
}

TEST(Trace, RouteSpanSegmentsIntoTheoremTwoBlocks) {
  // Sweep random pairs; for each, the hop events' (shift, block) stream
  // must be consistent with the conformance kit's Theorem 2 shape checker:
  // the path decomposes into <= 3 maximal runs, hop block indices are
  // non-decreasing, and each hop's shift letter matches its block role.
  Rng rng(2026);
  const std::uint32_t d = 3;
  const std::size_t k = 6;
  int multi_block_pairs = 0;
  for (int iter = 0; iter < 200; ++iter) {
    std::vector<Digit> xd(k), yd(k);
    for (std::size_t i = 0; i < k; ++i) {
      xd[i] = static_cast<Digit>(rng.below(d));
      yd[i] = static_cast<Digit>(rng.below(d));
    }
    const Word x(d, xd), y(d, yd);
    const RouteTrace trace = traced_route(x, y);
    ASSERT_TRUE(testkit::shape_matches_theorem2(x, y, trace.path))
        << x.to_string() << " -> " << y.to_string();
    ASSERT_EQ(trace.hops.size(), trace.path.hops().size());

    const testkit::ShiftRuns runs = testkit::shift_runs(trace.path);
    EXPECT_LE(runs.runs.size(), 3u);

    int previous_block = 0;
    std::size_t distinct_blocks = 0;
    for (std::size_t i = 0; i < trace.hops.size(); ++i) {
      const obs::TraceEvent& hop = trace.hops[i];
      const std::string* shift = find_arg(hop.args, "shift");
      const std::string* block = find_arg(hop.args, "block");
      const std::string* role = find_arg(hop.args, "role");
      ASSERT_NE(shift, nullptr);
      ASSERT_NE(block, nullptr);
      ASSERT_NE(role, nullptr);
      // The trace's shift letter must match the actual path hop.
      EXPECT_EQ(*shift, trace.path.hops()[i].type == ShiftType::Left ? "L"
                                                                     : "R");
      // Roles name the paper's blocks: an L^... role must carry L shifts.
      EXPECT_EQ(role->front() == 'L' ? "L" : "R", *shift)
          << "role " << *role << " carries a " << *shift << " shift";
      const int block_index = std::stoi(*block);
      EXPECT_GE(block_index, previous_block) << "blocks must not interleave";
      if (block_index != previous_block) {
        ++distinct_blocks;
      }
      previous_block = block_index;
    }
    // Block count from the trace == maximal shift runs in the real path.
    EXPECT_EQ(distinct_blocks, runs.runs.size());
    if (distinct_blocks == 3) {
      ++multi_block_pairs;
    }
    // The span's claimed distance is the path length.
    const std::string* distance = find_arg(trace.end.args, "distance");
    ASSERT_NE(distance, nullptr);
    EXPECT_EQ(std::stoul(*distance), trace.path.length());
  }
  // The sweep must actually exercise the full three-block form.
  EXPECT_GT(multi_block_pairs, 0);
}

TEST(Trace, NoSinkFastPathDoesNotAllocate) {
  ASSERT_FALSE(obs::tracing_enabled());
  BidirectionalRouteEngine engine(8);
  const Word x = Word(2, {0, 1, 1, 0, 1, 0, 0, 1});
  const Word y = Word(2, {1, 0, 0, 1, 0, 1, 1, 0});
  RoutingPath path;
  engine.route_into(x, y, WildcardMode::Concrete, path);  // warm buffers
  obs::MetricsRegistry registry;
  obs::Counter counter = registry.counter("warm");
  counter.inc();  // warm this thread's shard
  std::uint64_t after_route = 0, after_span = 0, after_counter = 0;
  {
    AllocationWindow window;
    engine.route_into(x, y, WildcardMode::Concrete, path);
    after_route = window.count();
    obs::Span span = obs::Span::begin("route", "route");
    span.instant("hop", 0.0);
    span.end(1.0);
    after_span = window.count();
    counter.inc();
    after_counter = window.count();
  }
  EXPECT_EQ(after_route, 0u) << "warmed route_into allocated";
  EXPECT_EQ(after_span - after_route, 0u) << "no-sink span API allocated";
  EXPECT_EQ(after_counter - after_span, 0u) << "warmed counter allocated";
}

// The batch engine's steady state is allocation-free end to end: per-query
// work runs in the per-worker engine arena (packed lanes for packable
// (d, k)), parallel_for borrows the chunk body without boxing it, and a
// warmed output vector is written in place. Both bi-directional backends
// must hold the property — the suffix-tree backend only differs in the
// scalar fallback, which packable words never reach.
TEST(Trace, WarmedBatchEngineDoesNotAllocate) {
  ASSERT_FALSE(obs::tracing_enabled());
  for (const BatchBackend backend :
       {BatchBackend::BidiEngine, BatchBackend::BidiSuffixTree}) {
    BatchRouteEngine engine(
        2, 8,
        BatchRouteOptions{.backend = backend, .threads = 1, .chunk = 16});
    Rng rng(42);
    std::vector<RouteQuery> queries;
    for (int i = 0; i < 64; ++i) {
      queries.push_back(RouteQuery{Word::from_rank(2, 8, rng.below(256)),
                                   Word::from_rank(2, 8, rng.below(256))});
    }
    std::vector<RoutingPath> out;
    engine.route_batch_into(queries, out);  // warm paths + engine buffers
    const std::vector<int> distances = engine.distance_batch(queries);
    ASSERT_EQ(distances.size(), queries.size());
    std::uint64_t after_routes = 0, after_distances = 0;
    {
      AllocationWindow window;
      engine.route_batch_into(queries, out);
      after_routes = window.count();
      engine.distance_batch(queries);
      after_distances = window.count();
    }
    EXPECT_EQ(after_routes, 0u)
        << batch_backend_name(backend) << ": warmed route batch allocated";
    // distance_batch returns a fresh vector by value — that one result
    // buffer is the only permitted allocation.
    EXPECT_LE(after_distances - after_routes, 1u)
        << batch_backend_name(backend) << ": warmed distance batch allocated";
  }
}

TEST(Trace, LaneScopeOverridesAndRestores) {
  const std::uint64_t base = obs::current_lane();
  {
    obs::LaneScope scope(17);
    EXPECT_EQ(obs::current_lane(), 17u);
    {
      obs::LaneScope inner(3);
      EXPECT_EQ(obs::current_lane(), 3u);
    }
    EXPECT_EQ(obs::current_lane(), 17u);
  }
  EXPECT_EQ(obs::current_lane(), base);
}

}  // namespace
