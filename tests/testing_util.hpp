// Shared helpers for the test suite: random word/string generation, the
// (d,k) parameter grids used by the BFS-validated property sweeps, and
// shard-replayable RNG seeding.
#pragma once

#include <cstdint>
#include <ostream>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "debruijn/word.hpp"
#include "strings/symbol.hpp"

namespace dbn::testing {

/// A (d,k) de Bruijn parameter point, printable for gtest.
struct DkParam {
  std::uint32_t d;
  std::size_t k;

  friend std::ostream& operator<<(std::ostream& os, const DkParam& p) {
    return os << "d" << p.d << "_k" << p.k;
  }
};

/// Every (d,k) with d^k small enough for all-pairs BFS in unit-test time.
inline std::vector<DkParam> small_grid() {
  return {
      {2, 1}, {2, 2}, {2, 3}, {2, 4}, {2, 5}, {2, 6}, {2, 7}, {2, 8},
      {3, 1}, {3, 2}, {3, 3}, {3, 4}, {3, 5},
      {4, 1}, {4, 2}, {4, 3}, {4, 4},
      {5, 1}, {5, 2}, {5, 3},
      {7, 1}, {7, 2}, {7, 3},
  };
}

/// Degenerate corners: the one-letter alphabet (single-vertex networks)
/// and diameter-1 graphs. Kept out of small_grid() because closed forms
/// like equation (5) divide by 1 - 1/d; everything route-related must
/// still work here.
inline std::vector<DkParam> degenerate_grid() {
  return {{1, 1}, {1, 2}, {1, 5}, {2, 1}, {5, 1}, {11, 1}};
}

/// Larger k, used where only per-pair (not all-pairs) work is done.
inline std::vector<DkParam> large_grid() {
  return {{2, 16}, {2, 33}, {2, 64}, {3, 21}, {5, 13}, {10, 9}};
}

inline std::vector<strings::Symbol> random_symbols(Rng& rng, std::size_t len,
                                                   std::uint32_t alphabet) {
  std::vector<strings::Symbol> s(len);
  for (auto& c : s) {
    c = static_cast<strings::Symbol>(rng.below(alphabet));
  }
  return s;
}

inline Word random_word(Rng& rng, std::uint32_t radix, std::size_t k) {
  std::vector<Digit> digits(k);
  for (auto& x : digits) {
    x = static_cast<Digit>(rng.below(radix));
  }
  return Word(radix, std::move(digits));
}

/// The base seed gtest was (re)started with: --gtest_random_seed=N /
/// GTEST_RANDOM_SEED, 0 unless shuffling. Mixing it into every random
/// test's RNG makes a shuffled shard's failures replayable bit-for-bit by
/// re-running with the seed gtest printed.
inline std::uint64_t gtest_base_seed() {
  const auto* unit = ::testing::UnitTest::GetInstance();
  return unit == nullptr ? 0
                         : static_cast<std::uint64_t>(unit->random_seed());
}

/// Seed for one test: the gtest base seed mixed (splitmix64-style) with a
/// per-test tag so distinct tests draw independent streams.
inline std::uint64_t shard_seed(std::uint64_t tag) {
  std::uint64_t z = gtest_base_seed() + 0x9e3779b97f4a7c15ull * (tag + 1);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

/// Human-readable provenance attached to failures via SCOPED_TRACE.
inline std::string seed_trace(std::uint64_t tag) {
  std::ostringstream out;
  out << "rng: tag=" << tag << " gtest_random_seed=" << gtest_base_seed()
      << " (replay with --gtest_random_seed=" << gtest_base_seed() << ")";
  return out.str();
}

}  // namespace dbn::testing

/// Declares `var`, an Rng seeded from the gtest shard seed and `tag`, and
/// attaches the seed to any failure inside the current scope.
#define DBN_SEEDED_RNG(var, tag)                          \
  ::dbn::Rng var(::dbn::testing::shard_seed(tag));        \
  SCOPED_TRACE(::dbn::testing::seed_trace(tag))
