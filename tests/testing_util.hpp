// Shared helpers for the test suite: random word/string generation and the
// (d,k) parameter grids used by the BFS-validated property sweeps.
#pragma once

#include <cstdint>
#include <ostream>
#include <vector>

#include "common/rng.hpp"
#include "debruijn/word.hpp"
#include "strings/symbol.hpp"

namespace dbn::testing {

/// A (d,k) de Bruijn parameter point, printable for gtest.
struct DkParam {
  std::uint32_t d;
  std::size_t k;

  friend std::ostream& operator<<(std::ostream& os, const DkParam& p) {
    return os << "d" << p.d << "_k" << p.k;
  }
};

/// Every (d,k) with d^k small enough for all-pairs BFS in unit-test time.
inline std::vector<DkParam> small_grid() {
  return {
      {2, 1}, {2, 2}, {2, 3}, {2, 4}, {2, 5}, {2, 6}, {2, 7}, {2, 8},
      {3, 1}, {3, 2}, {3, 3}, {3, 4}, {3, 5},
      {4, 1}, {4, 2}, {4, 3}, {4, 4},
      {5, 1}, {5, 2}, {5, 3},
      {7, 1}, {7, 2}, {7, 3},
  };
}

/// Larger k, used where only per-pair (not all-pairs) work is done.
inline std::vector<DkParam> large_grid() {
  return {{2, 16}, {2, 33}, {2, 64}, {3, 21}, {5, 13}, {10, 9}};
}

inline std::vector<strings::Symbol> random_symbols(Rng& rng, std::size_t len,
                                                   std::uint32_t alphabet) {
  std::vector<strings::Symbol> s(len);
  for (auto& c : s) {
    c = static_cast<strings::Symbol>(rng.below(alphabet));
  }
  return s;
}

inline Word random_word(Rng& rng, std::uint32_t radix, std::size_t k) {
  std::vector<Digit> digits(k);
  for (auto& x : digits) {
    x = static_cast<Digit>(rng.below(radix));
  }
  return Word(radix, std::move(digits));
}

}  // namespace dbn::testing
