#include <gtest/gtest.h>

#include <set>

#include "common/contract.hpp"
#include "debruijn/bfs.hpp"
#include "net/broadcast.hpp"
#include "testing_util.hpp"

namespace dbn::net {
namespace {

TEST(Broadcast, TreeIsASpanningTreeOfGraphEdges) {
  for (Orientation o : {Orientation::Directed, Orientation::Undirected}) {
    const DeBruijnGraph g(2, 5, o);
    const BroadcastTree tree = build_broadcast_tree(g, 3);
    std::uint64_t edges = 0;
    for (std::uint64_t v = 0; v < g.vertex_count(); ++v) {
      if (v == tree.root) {
        EXPECT_EQ(tree.parent[v], -1);
        EXPECT_EQ(tree.depth[v], 0);
        continue;
      }
      ASSERT_GE(tree.parent[v], 0);
      const auto p = static_cast<std::uint64_t>(tree.parent[v]);
      EXPECT_TRUE(g.has_edge(p, v)) << "tree edge " << p << "->" << v;
      EXPECT_EQ(tree.depth[v], tree.depth[p] + 1);
      ++edges;
    }
    EXPECT_EQ(edges, g.vertex_count() - 1);
  }
}

TEST(Broadcast, DepthsEqualBfsDistances) {
  const DeBruijnGraph g(3, 3, Orientation::Undirected);
  for (std::uint64_t root = 0; root < g.vertex_count(); root += 4) {
    const BroadcastTree tree = build_broadcast_tree(g, root);
    const auto dist = bfs_distances(g, root);
    for (std::uint64_t v = 0; v < g.vertex_count(); ++v) {
      EXPECT_EQ(tree.depth[v], dist[v]);
    }
    EXPECT_EQ(tree.height, eccentricity(g, root));
  }
}

TEST(Broadcast, ChildrenAndParentsAreConsistent) {
  const DeBruijnGraph g(2, 6, Orientation::Undirected);
  const BroadcastTree tree = build_broadcast_tree(g, 0);
  std::set<std::uint64_t> seen;
  for (std::uint64_t v = 0; v < g.vertex_count(); ++v) {
    for (const std::uint64_t c : tree.children[v]) {
      EXPECT_EQ(tree.parent[c], static_cast<std::int64_t>(v));
      EXPECT_TRUE(seen.insert(c).second) << "vertex with two parents";
    }
  }
  EXPECT_EQ(seen.size(), g.vertex_count() - 1);
}

TEST(Broadcast, AllPortCompletesAtTreeHeight) {
  const DeBruijnGraph g(2, 6, Orientation::Undirected);
  const BroadcastTree tree = build_broadcast_tree(g, 5);
  const BroadcastSchedule sched = schedule_broadcast(tree, PortModel::AllPort);
  EXPECT_EQ(sched.completion, tree.height);
  EXPECT_EQ(sched.messages, g.vertex_count() - 1);
  for (std::uint64_t v = 0; v < g.vertex_count(); ++v) {
    EXPECT_EQ(sched.receive_round[v], tree.depth[v]);
  }
}

TEST(Broadcast, SinglePortIsSlowerButBounded) {
  const DeBruijnGraph g(2, 6, Orientation::Undirected);
  const BroadcastTree tree = build_broadcast_tree(g, 0);
  const BroadcastSchedule all = schedule_broadcast(tree, PortModel::AllPort);
  const BroadcastSchedule single =
      schedule_broadcast(tree, PortModel::SinglePort);
  EXPECT_GE(single.completion, all.completion);
  // A site has at most 2d children, so each level adds at most 2d rounds.
  EXPECT_LE(single.completion, tree.height * 2 * 2);
  // Receive rounds are consistent: child strictly after parent.
  for (std::uint64_t v = 0; v < g.vertex_count(); ++v) {
    if (tree.parent[v] >= 0) {
      EXPECT_GT(single.receive_round[v],
                single.receive_round[static_cast<std::uint64_t>(tree.parent[v])]);
    }
  }
}

TEST(Broadcast, SinglePortSiblingsUseDistinctRounds) {
  const DeBruijnGraph g(3, 3, Orientation::Undirected);
  const BroadcastTree tree = build_broadcast_tree(g, 7);
  const BroadcastSchedule single =
      schedule_broadcast(tree, PortModel::SinglePort);
  for (std::uint64_t v = 0; v < g.vertex_count(); ++v) {
    std::set<int> rounds;
    for (const std::uint64_t c : tree.children[v]) {
      EXPECT_TRUE(rounds.insert(single.receive_round[c]).second)
          << "two children of " << v << " served in the same round";
    }
  }
}

TEST(Broadcast, RejectsBadRoot) {
  const DeBruijnGraph g(2, 3, Orientation::Undirected);
  EXPECT_THROW(build_broadcast_tree(g, 8), ContractViolation);
}

TEST(Reduce, AllPortCompletesAtTreeHeight) {
  const DeBruijnGraph g(2, 6, Orientation::Undirected);
  const BroadcastTree tree = build_broadcast_tree(g, 9);
  const ReduceSchedule reduce = schedule_reduce(tree, PortModel::AllPort);
  EXPECT_EQ(reduce.completion, tree.height);
  EXPECT_EQ(reduce.messages, g.vertex_count() - 1);
  EXPECT_EQ(reduce.send_round[tree.root], 0);
}

TEST(Reduce, ChildrenSendBeforeParents) {
  const DeBruijnGraph g(3, 3, Orientation::Undirected);
  const BroadcastTree tree = build_broadcast_tree(g, 4);
  for (PortModel model : {PortModel::AllPort, PortModel::SinglePort}) {
    const ReduceSchedule reduce = schedule_reduce(tree, model);
    for (std::uint64_t v = 0; v < g.vertex_count(); ++v) {
      for (const std::uint64_t c : tree.children[v]) {
        // c's message leaves strictly after all of c's own children landed.
        for (const std::uint64_t gc : tree.children[c]) {
          EXPECT_LT(reduce.send_round[gc], reduce.send_round[c]);
        }
      }
    }
  }
}

TEST(Reduce, SinglePortSerializesSiblingArrivals) {
  const DeBruijnGraph g(2, 6, Orientation::Undirected);
  const BroadcastTree tree = build_broadcast_tree(g, 0);
  const ReduceSchedule single = schedule_reduce(tree, PortModel::SinglePort);
  const ReduceSchedule all = schedule_reduce(tree, PortModel::AllPort);
  EXPECT_GE(single.completion, all.completion);
  for (std::uint64_t v = 0; v < g.vertex_count(); ++v) {
    std::set<int> rounds;
    for (const std::uint64_t c : tree.children[v]) {
      EXPECT_TRUE(rounds.insert(single.send_round[c]).second)
          << "two children of " << v << " arrive in the same round";
    }
  }
}

}  // namespace
}  // namespace dbn::net
