#include <gtest/gtest.h>

#include "common/contract.hpp"
#include "common/rng.hpp"
#include "strings/matching.hpp"
#include "strings/naive.hpp"
#include "testing_util.hpp"

namespace dbn::strings {
namespace {

using dbn::testing::random_symbols;

TEST(MatchingRowL, HandComputedExample) {
  // x = abab, y = bbab. Row i=1 (pattern "abab"):
  //   j=1: longest prefix of "abab" ending y_1='b' -> 0
  //   j=2: 0; j=3: 'a' -> 1; j=4: "ab" -> 2.
  const auto x = to_symbols("abab");
  const auto y = to_symbols("bbab");
  EXPECT_EQ(matching_row_l(x, y, 0), (std::vector<int>{0, 0, 1, 2}));
  // Row i=2 (pattern "bab"): j=1 -> 'b' 1; j=2 -> 'b' 1; j=3 -> 0? no:
  // y_3='a', "ba" matches y_2 y_3 -> 2; j=4: "bab" -> 3.
  EXPECT_EQ(matching_row_l(x, y, 1), (std::vector<int>{1, 1, 2, 3}));
}

TEST(MatchingRowL, CapsAtPatternLength) {
  const auto x = to_symbols("ab");
  const auto y = to_symbols("ababab");
  // Pattern "ab" occurs with full length repeatedly; row must cap at 2 and
  // recover via the failure function.
  EXPECT_EQ(matching_row_l(x, y, 0), (std::vector<int>{1, 2, 1, 2, 1, 2}));
}

TEST(MatchingRowL, RejectsBadRow) {
  const auto x = to_symbols("ab");
  EXPECT_THROW(matching_row_l(x, x, 2), ContractViolation);
}

TEST(MatchingTables, MatchNaiveOnRandomStrings) {
  Rng rng(404);
  for (int trial = 0; trial < 120; ++trial) {
    const std::uint32_t alphabet = 2 + trial % 3;
    const std::size_t n = 1 + rng.below(16);
    const std::size_t m = 1 + rng.below(16);
    const auto x = random_symbols(rng, n, alphabet);
    const auto y = random_symbols(rng, m, alphabet);
    const auto l = matching_table_l(x, y);
    const auto r = matching_table_r(x, y);
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t j = 0; j < m; ++j) {
        EXPECT_EQ(l[i][j], naive::matching_l(x, y, i, j))
            << "l mismatch at i=" << i << " j=" << j << " trial " << trial;
        EXPECT_EQ(r[i][j], naive::matching_r(x, y, i, j))
            << "r mismatch at i=" << i << " j=" << j << " trial " << trial;
      }
    }
  }
}

TEST(MatchingTables, DefinitionBoundsHold) {
  // l_{i,j} <= min(j, k-i+1); r_{i,j} <= min(i, k-j+1) (paper (8)-(9)).
  Rng rng(505);
  for (int trial = 0; trial < 60; ++trial) {
    const std::size_t k = 1 + rng.below(12);
    const auto x = random_symbols(rng, k, 2);
    const auto y = random_symbols(rng, k, 2);
    const auto l = matching_table_l(x, y);
    const auto r = matching_table_r(x, y);
    for (std::size_t i0 = 0; i0 < k; ++i0) {
      for (std::size_t j0 = 0; j0 < k; ++j0) {
        EXPECT_LE(l[i0][j0], static_cast<int>(std::min(j0 + 1, k - i0)));
        EXPECT_LE(r[i0][j0], static_cast<int>(std::min(i0 + 1, k - j0)));
      }
    }
  }
}

TEST(MinLCost, MatchesNaiveEnumeration) {
  Rng rng(606);
  for (int trial = 0; trial < 200; ++trial) {
    const std::uint32_t alphabet = 2 + trial % 3;
    const std::size_t k = 1 + rng.below(14);
    const auto x = random_symbols(rng, k, alphabet);
    const auto y = random_symbols(rng, k, alphabet);
    const OverlapMin fast = min_l_cost(x, y);
    const OverlapMin brute = naive::min_l_cost(x, y);
    EXPECT_EQ(fast.cost, brute.cost) << "trial " << trial;
    // The minimizer itself may differ under ties; verify it is a witness.
    EXPECT_EQ(fast.theta,
              naive::matching_l(x, y, static_cast<std::size_t>(fast.s - 1),
                                static_cast<std::size_t>(fast.t - 1)))
        << "returned theta must equal l_{s,t}";
    EXPECT_EQ(fast.cost,
              2 * static_cast<int>(k) - 1 + fast.s - fast.t - fast.theta);
  }
}

TEST(MinLCost, IdenticalWordsGiveZero) {
  const auto x = to_symbols("0110");
  const OverlapMin m = min_l_cost(x, x);
  EXPECT_EQ(m.cost, 0);
  EXPECT_EQ(m.s, 1);
  EXPECT_EQ(m.t, 4);
  EXPECT_EQ(m.theta, 4);
}

TEST(MinLCost, NeverExceedsDiameter) {
  Rng rng(707);
  for (int trial = 0; trial < 100; ++trial) {
    const std::size_t k = 1 + rng.below(20);
    const auto x = random_symbols(rng, k, 2);
    const auto y = random_symbols(rng, k, 2);
    EXPECT_LE(min_l_cost(x, y).cost, static_cast<int>(k));
  }
}

TEST(MinLCost, RejectsMismatchedLengths) {
  const auto x = to_symbols("ab");
  const auto y = to_symbols("abc");
  EXPECT_THROW(min_l_cost(x, y), ContractViolation);
  EXPECT_THROW(min_l_cost({}, {}), ContractViolation);
}

}  // namespace
}  // namespace dbn::strings
