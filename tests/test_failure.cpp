#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "strings/failure.hpp"
#include "strings/naive.hpp"
#include "testing_util.hpp"

namespace dbn::strings {
namespace {

using dbn::testing::random_symbols;

TEST(BorderArray, KnownExamples) {
  // "ababaca": borders 0 0 1 2 3 0 1 (classic CLRS example).
  const auto p = to_symbols("ababaca");
  EXPECT_EQ(border_array(p), (std::vector<int>{0, 0, 1, 2, 3, 0, 1}));

  const auto q = to_symbols("aaaa");
  EXPECT_EQ(border_array(q), (std::vector<int>{0, 1, 2, 3}));

  const auto r = to_symbols("abcd");
  EXPECT_EQ(border_array(r), (std::vector<int>{0, 0, 0, 0}));
}

TEST(BorderArray, EmptyAndSingle) {
  EXPECT_TRUE(border_array({}).empty());
  const auto one = to_symbols("x");
  EXPECT_EQ(border_array(one), (std::vector<int>{0}));
}

TEST(BorderArray, MatchesNaiveOnRandomStrings) {
  Rng rng(101);
  for (int trial = 0; trial < 300; ++trial) {
    const std::uint32_t alphabet = 2 + trial % 4;
    const std::size_t len = 1 + rng.below(40);
    const auto s = random_symbols(rng, len, alphabet);
    EXPECT_EQ(border_array(s), naive::border_array(s)) << "trial " << trial;
  }
}

TEST(SuffixPrefixOverlap, KnownExamples) {
  const auto ab = to_symbols("ab");
  const auto ba = to_symbols("ba");
  EXPECT_EQ(suffix_prefix_overlap(ab, ba), 1);  // "b"
  EXPECT_EQ(suffix_prefix_overlap(ab, ab), 2);  // whole word
  const auto x = to_symbols("aab");
  const auto y = to_symbols("baa");
  EXPECT_EQ(suffix_prefix_overlap(x, y), 1);
  EXPECT_EQ(suffix_prefix_overlap(y, x), 2);  // "aa"
  const auto u = to_symbols("abc");
  const auto v = to_symbols("def");
  EXPECT_EQ(suffix_prefix_overlap(u, v), 0);
}

TEST(SuffixPrefixOverlap, FullMatchInsideDoesNotConfuse) {
  // y occurs inside x but the true suffix-prefix overlap is shorter.
  const auto x = to_symbols("abab");  // contains "ab" twice, ends with "ab"
  const auto y = to_symbols("ab");
  EXPECT_EQ(suffix_prefix_overlap(x, y), 2);
  const auto x2 = to_symbols("abax");
  EXPECT_EQ(suffix_prefix_overlap(x2, y), 0);
}

TEST(SuffixPrefixOverlap, EmptyOperands) {
  const auto a = to_symbols("a");
  EXPECT_EQ(suffix_prefix_overlap({}, a), 0);
  EXPECT_EQ(suffix_prefix_overlap(a, {}), 0);
}

TEST(SuffixPrefixOverlap, UnequalLengthsMatchNaive) {
  Rng rng(202);
  for (int trial = 0; trial < 500; ++trial) {
    const std::uint32_t alphabet = 2 + trial % 3;
    const auto x = random_symbols(rng, 1 + rng.below(30), alphabet);
    const auto y = random_symbols(rng, 1 + rng.below(30), alphabet);
    EXPECT_EQ(suffix_prefix_overlap(x, y), naive::suffix_prefix_overlap(x, y))
        << "trial " << trial;
  }
}

TEST(KmpFindAll, KnownExamples) {
  const auto text = to_symbols("aabaabaaa");
  const auto pat = to_symbols("aab");
  EXPECT_EQ(kmp_find_all(text, pat), (std::vector<std::size_t>{0, 3}));
  const auto aa = to_symbols("aa");
  EXPECT_EQ(kmp_find_all(text, aa), (std::vector<std::size_t>{0, 3, 6, 7}));
}

TEST(KmpFindAll, EmptyPatternOccursEverywhere) {
  const auto text = to_symbols("xy");
  EXPECT_EQ(kmp_find_all(text, {}), (std::vector<std::size_t>{0, 1, 2}));
}

TEST(KmpFindAll, MatchesNaiveOnRandomStrings) {
  Rng rng(303);
  for (int trial = 0; trial < 400; ++trial) {
    const std::uint32_t alphabet = 2;
    const auto text = random_symbols(rng, rng.below(50), alphabet);
    const auto pat = random_symbols(rng, 1 + rng.below(6), alphabet);
    EXPECT_EQ(kmp_find_all(text, pat), naive::find_all(text, pat))
        << "trial " << trial;
  }
}

}  // namespace
}  // namespace dbn::strings
