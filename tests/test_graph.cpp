#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "common/contract.hpp"
#include "debruijn/graph.hpp"
#include "testing_util.hpp"

namespace dbn {
namespace {

using dbn::testing::DkParam;

class GraphGrid : public ::testing::TestWithParam<DkParam> {};

TEST_P(GraphGrid, NeighborsMatchShiftDefinitions) {
  const auto [d, k] = GetParam();
  for (Orientation o : {Orientation::Directed, Orientation::Undirected}) {
    const DeBruijnGraph g(d, k, o);
    for (std::uint64_t v = 0; v < g.vertex_count(); ++v) {
      const Word w = g.word(v);
      std::set<std::uint64_t> expected;
      for (Digit a = 0; a < d; ++a) {
        expected.insert(w.left_shift(a).rank());
        if (o == Orientation::Undirected) {
          expected.insert(w.right_shift(a).rank());
        }
      }
      if (o == Orientation::Undirected) {
        expected.erase(v);
      }
      const auto got = g.neighbors(v);
      const std::set<std::uint64_t> got_set(got.begin(), got.end());
      if (o == Orientation::Undirected) {
        EXPECT_EQ(got_set, expected) << "vertex " << w.to_string();
        EXPECT_EQ(got.size(), got_set.size()) << "duplicates returned";
      } else {
        // Directed neighbors are the d left shifts (with multiplicity 1
        // each; they are pairwise distinct).
        EXPECT_EQ(got.size(), static_cast<std::size_t>(d));
        std::set<std::uint64_t> left;
        for (Digit a = 0; a < d; ++a) {
          left.insert(w.left_shift(a).rank());
        }
        EXPECT_EQ(got_set, left);
      }
    }
  }
}

TEST_P(GraphGrid, HasEdgeAgreesWithNeighbors) {
  const auto [d, k] = GetParam();
  if (Word::vertex_count(d, k) > 128) {
    GTEST_SKIP() << "quadratic probe too large";
  }
  for (Orientation o : {Orientation::Directed, Orientation::Undirected}) {
    const DeBruijnGraph g(d, k, o);
    for (std::uint64_t u = 0; u < g.vertex_count(); ++u) {
      const auto nbrs = g.neighbors(u);
      const std::set<std::uint64_t> nbr_set(nbrs.begin(), nbrs.end());
      for (std::uint64_t v = 0; v < g.vertex_count(); ++v) {
        if (o == Orientation::Undirected && u == v) {
          EXPECT_FALSE(g.has_edge(u, v));
          continue;
        }
        EXPECT_EQ(g.has_edge(u, v), nbr_set.contains(v))
            << "u=" << u << " v=" << v;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(SmallGrid, GraphGrid,
                         ::testing::ValuesIn(dbn::testing::small_grid()),
                         ::testing::PrintToStringParamName());

TEST(Graph, DirectedDegreeCensusMatchesPaper) {
  // Paper §1: the directed DG(d,k) has N-d vertices of degree 2d and d
  // vertices (the constant words, whose self-loop is removed) of degree
  // 2d-2.
  for (const auto& [d, k] : dbn::testing::small_grid()) {
    if (k < 2) {
      continue;  // k = 1 is the complete-graph degenerate case
    }
    const DeBruijnGraph g(d, k, Orientation::Directed);
    const auto census = g.degree_census();
    const std::uint64_t n = g.vertex_count();
    ASSERT_EQ(census.size(), 2u) << "d=" << d << " k=" << k;
    EXPECT_EQ(census.at(2 * d), n - d) << "d=" << d << " k=" << k;
    EXPECT_EQ(census.at(2 * d - 2), d) << "d=" << d << " k=" << k;
  }
}

TEST(Graph, UndirectedDegreeCensusMatchesPaper) {
  // Paper §1 (with the OCR-garbled sentence reconstructed, DESIGN.md):
  // N-d^2 vertices of degree 2d, d^2-d vertices (period-2 non-constant
  // words) of degree 2d-1, and d constant words of degree 2d-2.
  for (const auto& [d, k] : dbn::testing::small_grid()) {
    if (k < 3) {
      continue;  // small k degenerates (period-2 words are everything)
    }
    const DeBruijnGraph g(d, k, Orientation::Undirected);
    const auto census = g.degree_census();
    const std::uint64_t n = g.vertex_count();
    ASSERT_EQ(census.size(), 3u) << "d=" << d << " k=" << k;
    EXPECT_EQ(census.at(2 * d), n - static_cast<std::uint64_t>(d) * d)
        << "d=" << d << " k=" << k;
    EXPECT_EQ(census.at(2 * d - 1), static_cast<std::uint64_t>(d) * (d - 1))
        << "d=" << d << " k=" << k;
    EXPECT_EQ(census.at(2 * d - 2), d) << "d=" << d << " k=" << k;
  }
}

TEST(Graph, Figure1DirectedDG23EdgeList) {
  // Figure 1(a): directed DG(2,3) — spot-check the picture's arcs.
  const DeBruijnGraph g(2, 3, Orientation::Directed);
  const Word v000(2, {0, 0, 0}), v001(2, {0, 0, 1}), v010(2, {0, 1, 0}),
      v011(2, {0, 1, 1}), v100(2, {1, 0, 0}), v111(2, {1, 1, 1});
  EXPECT_TRUE(g.has_edge(v000.rank(), v000.rank()));  // self-loop arc
  EXPECT_TRUE(g.has_edge(v000.rank(), v001.rank()));
  EXPECT_TRUE(g.has_edge(v001.rank(), v010.rank()));
  EXPECT_TRUE(g.has_edge(v001.rank(), v011.rank()));
  EXPECT_TRUE(g.has_edge(v100.rank(), v000.rank()));
  EXPECT_FALSE(g.has_edge(v000.rank(), v100.rank()));  // wrong direction
  EXPECT_FALSE(g.has_edge(v000.rank(), v011.rank()));
  EXPECT_FALSE(g.has_edge(v111.rank(), v000.rank()));
}

TEST(Graph, Figure1UndirectedDG23IsSymmetric) {
  const DeBruijnGraph g(2, 3, Orientation::Undirected);
  for (std::uint64_t u = 0; u < g.vertex_count(); ++u) {
    for (std::uint64_t v = 0; v < g.vertex_count(); ++v) {
      EXPECT_EQ(g.has_edge(u, v), g.has_edge(v, u));
    }
  }
  // (0,0,0)-(1,0,0) is an edge in the undirected graph.
  EXPECT_TRUE(g.has_edge(0, 4));
}

TEST(Graph, ArcCountMatchesNd) {
  // Paper §1: there are N*d arcs (before removing redundancy).
  for (std::uint32_t d : {2u, 3u}) {
    const std::size_t k = 3;
    const DeBruijnGraph g(d, k, Orientation::Directed);
    std::uint64_t arcs = 0;
    for (std::uint64_t v = 0; v < g.vertex_count(); ++v) {
      arcs += g.neighbors(v).size();
    }
    EXPECT_EQ(arcs, g.vertex_count() * d);
  }
}

TEST(Graph, AdjacencyGuardsMaterialization) {
  const DeBruijnGraph g(2, 30, Orientation::Directed);
  EXPECT_THROW(g.adjacency(1 << 10), ContractViolation);
  EXPECT_THROW(g.degree_census(1 << 10), ContractViolation);
}

TEST(Graph, RankShiftHelpersRejectBadArguments) {
  const DeBruijnGraph g(2, 3, Orientation::Directed);
  EXPECT_THROW(g.left_shift_rank(8, 0), ContractViolation);
  EXPECT_THROW(g.left_shift_rank(0, 2), ContractViolation);
  EXPECT_THROW(g.right_shift_rank(0, 3), ContractViolation);
}

}  // namespace
}  // namespace dbn
