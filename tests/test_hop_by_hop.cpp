#include <gtest/gtest.h>

#include "common/contract.hpp"
#include "common/rng.hpp"
#include "core/distance.hpp"
#include "core/hop_by_hop.hpp"
#include "debruijn/bfs.hpp"
#include "net/simulator.hpp"
#include "testing_util.hpp"

namespace dbn {
namespace {

using dbn::testing::DkParam;

class HopByHopGrid : public ::testing::TestWithParam<DkParam> {};

TEST_P(HopByHopGrid, GreedyWalkIsExactAllPairs) {
  const auto [d, k] = GetParam();
  if (Word::vertex_count(d, k) > 128) {
    GTEST_SKIP() << "all-pairs walk too large";
  }
  for (Orientation o : {Orientation::Directed, Orientation::Undirected}) {
    const DeBruijnGraph g(d, k, o);
    for (std::uint64_t xr = 0; xr < g.vertex_count(); ++xr) {
      const std::vector<int> dist = bfs_distances(g, xr);
      for (std::uint64_t yr = 0; yr < g.vertex_count(); ++yr) {
        const auto walk = greedy_walk(g.word(xr), g.word(yr), o);
        EXPECT_EQ(static_cast<int>(walk.size()) - 1, dist[yr])
            << "X=" << g.word(xr).to_string()
            << " Y=" << g.word(yr).to_string();
        EXPECT_EQ(walk.front(), g.word(xr));
        EXPECT_EQ(walk.back(), g.word(yr));
        // Every step is a real edge (or a degenerate self-shift never
        // occurs, because greedy strictly decreases the distance).
        for (std::size_t i = 0; i + 1 < walk.size(); ++i) {
          EXPECT_TRUE(g.has_edge(walk[i].rank(), walk[i + 1].rank()));
        }
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(SmallGrid, HopByHopGrid,
                         ::testing::ValuesIn(dbn::testing::small_grid()),
                         ::testing::PrintToStringParamName());

TEST(HopByHop, LargeRandomPairsMatchDistance) {
  Rng rng(91);
  for (const auto& [d, k] : std::vector<std::pair<std::uint32_t, std::size_t>>{
           {2, 16}, {3, 9}, {5, 6}}) {
    for (int trial = 0; trial < 20; ++trial) {
      const Word x = testing::random_word(rng, d, k);
      const Word y = testing::random_word(rng, d, k);
      const auto walk = greedy_walk(x, y, Orientation::Undirected);
      EXPECT_EQ(static_cast<int>(walk.size()) - 1, undirected_distance(x, y));
      const auto dwalk = greedy_walk(x, y, Orientation::Directed);
      EXPECT_EQ(static_cast<int>(dwalk.size()) - 1, directed_distance(x, y));
    }
  }
}

TEST(HopByHop, NextHopRequiresDistinctEndpoints) {
  const Word x(2, {0, 1});
  EXPECT_THROW(next_hop_unidirectional(x, x), ContractViolation);
  EXPECT_THROW(next_hop_bidirectional(x, x), ContractViolation);
}

TEST(HopByHop, SimulatorHopByHopDeliversWithOptimalHops) {
  net::SimConfig config;
  config.radix = 2;
  config.k = 5;
  config.forwarding = net::ForwardingMode::HopByHop;
  net::Simulator sim(config);
  Rng rng(92);
  std::uint64_t expected_hops = 0;
  const int messages = 100;
  for (int i = 0; i < messages; ++i) {
    const Word src = testing::random_word(rng, 2, 5);
    const Word dst = testing::random_word(rng, 2, 5);
    expected_hops += static_cast<std::uint64_t>(undirected_distance(src, dst));
    // No path field at all: sites compute everything.
    sim.inject(0.2 * i, net::Message(net::ControlCode::Data, src, dst,
                                     RoutingPath{}));
  }
  sim.run();
  EXPECT_EQ(sim.stats().delivered, static_cast<std::uint64_t>(messages));
  EXPECT_EQ(sim.stats().misdelivered, 0u);
  EXPECT_EQ(sim.stats().total_hops, expected_hops);
}

TEST(HopByHop, SimulatorDirectedHopByHop) {
  net::SimConfig config;
  config.radix = 3;
  config.k = 3;
  config.orientation = Orientation::Directed;
  config.forwarding = net::ForwardingMode::HopByHop;
  net::Simulator sim(config);
  Rng rng(93);
  std::uint64_t expected_hops = 0;
  for (int i = 0; i < 50; ++i) {
    const Word src = testing::random_word(rng, 3, 3);
    const Word dst = testing::random_word(rng, 3, 3);
    expected_hops += static_cast<std::uint64_t>(directed_distance(src, dst));
    sim.inject(0.5 * i, net::Message(net::ControlCode::Data, src, dst,
                                     RoutingPath{}));
  }
  sim.run();
  EXPECT_EQ(sim.stats().delivered, 50u);
  EXPECT_EQ(sim.stats().total_hops, expected_hops);
}

}  // namespace
}  // namespace dbn
