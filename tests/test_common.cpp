#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <sstream>

#include "common/contract.hpp"
#include "common/rng.hpp"
#include "common/table.hpp"

namespace dbn {
namespace {

TEST(Contract, RequireThrowsWithContext) {
  try {
    DBN_REQUIRE(1 == 2, "custom message");
    FAIL() << "DBN_REQUIRE must throw";
  } catch (const ContractViolation& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("1 == 2"), std::string::npos);
    EXPECT_NE(what.find("custom message"), std::string::npos);
    EXPECT_NE(what.find("precondition"), std::string::npos);
  }
}

TEST(Contract, AssertLabelsInvariant) {
  try {
    DBN_ASSERT(false, "broken");
    FAIL() << "DBN_ASSERT must throw";
  } catch (const ContractViolation& e) {
    EXPECT_NE(std::string(e.what()).find("invariant"), std::string::npos);
  }
}

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a(), b());
  }
}

TEST(Rng, DiffersAcrossSeeds) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    equal += (a() == b());
  }
  EXPECT_LT(equal, 4);
}

TEST(Rng, BelowStaysInRange) {
  Rng rng(7);
  for (std::uint64_t bound : {1ull, 2ull, 3ull, 10ull, 1000ull}) {
    for (int i = 0; i < 200; ++i) {
      EXPECT_LT(rng.below(bound), bound);
    }
  }
}

TEST(Rng, BelowIsRoughlyUniform) {
  Rng rng(11);
  constexpr int kBuckets = 8;
  constexpr int kDraws = 80000;
  int counts[kBuckets] = {};
  for (int i = 0; i < kDraws; ++i) {
    ++counts[rng.below(kBuckets)];
  }
  for (int c : counts) {
    // Expected 10000 per bucket; 5-sigma band is about +-470.
    EXPECT_NEAR(c, kDraws / kBuckets, 600);
  }
}

TEST(Rng, BetweenCoversInclusiveRange) {
  Rng rng(3);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const std::int64_t v = rng.between(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);
}

TEST(Rng, Uniform01InHalfOpenInterval) {
  Rng rng(5);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform01();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 10000, 0.5, 0.02);
}

TEST(Rng, ExponentialHasRequestedMean) {
  Rng rng(9);
  const double rate = 4.0;
  double sum = 0;
  for (int i = 0; i < 40000; ++i) {
    const double v = rng.exponential(rate);
    EXPECT_GE(v, 0.0);
    sum += v;
  }
  EXPECT_NEAR(sum / 40000, 1.0 / rate, 0.01);
}

TEST(Rng, ForkedStreamsDiffer) {
  Rng parent(123);
  Rng a = parent.fork(0);
  Rng b = parent.fork(1);
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    equal += (a() == b());
  }
  EXPECT_LT(equal, 4);
}

TEST(Rng, RejectsBadArguments) {
  Rng rng(1);
  EXPECT_THROW(rng.below(0), ContractViolation);
  EXPECT_THROW(rng.between(3, 2), ContractViolation);
  EXPECT_THROW(rng.exponential(0.0), ContractViolation);
}

TEST(Table, PrintsAlignedColumnsWithRule) {
  Table table({"k", "value"});
  table.add_row({"1", "0.5000"});
  table.add_row({"10", "1.2500"});
  std::ostringstream os;
  table.print(os, "caption");
  const std::string out = os.str();
  EXPECT_NE(out.find("caption"), std::string::npos);
  EXPECT_NE(out.find("k"), std::string::npos);
  EXPECT_NE(out.find("0.5000"), std::string::npos);
  EXPECT_NE(out.find("---"), std::string::npos);
  EXPECT_EQ(table.rows(), 2u);
}

TEST(Table, RejectsMismatchedRowWidth) {
  Table table({"a", "b"});
  EXPECT_THROW(table.add_row({"only one"}), ContractViolation);
}

TEST(Table, NumFormatsFixedDecimals) {
  EXPECT_EQ(Table::num(1.0, 2), "1.00");
  EXPECT_EQ(Table::num(0.125, 3), "0.125");
}

}  // namespace
}  // namespace dbn
