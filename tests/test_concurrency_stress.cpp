// Concurrency stress suite — the workloads the ThreadSanitizer CI gate
// (DBN_SAN=thread) runs to prove the concurrent subsystems race-free:
//
//   ThreadPool        chunk claiming under contention, exception
//                     propagation from racing chunks, pool churn,
//                     concurrent independent pools.
//   MetricsRegistry   shard merge (snapshot/reset) racing counter,
//                     histogram and gauge traffic from many threads, with
//                     post-join exactness checks.
//   TraceSink         enable/disable flips mid-route from a toggling
//                     thread while worker threads route with tracing
//                     branches active.
//   BatchRouteEngine  memo-cache sharding under parallel workers, plus
//                     concurrent independent engines.
//   LayerTable        sharded view cache under colliding destination
//                     traffic, pinned views read across evictions, and
//                     adaptive walks sharing one table.
//   RouteServer       concurrent client feeds racing the dispatcher, a
//                     stats/queue-depth poller, and a mid-flight drain.
//
// The suite is deliberately small-N so it stays inside the unit tier on a
// laptop, but every test keeps at least two OS threads genuinely racing.
// Run it under TSan with:  cmake -B build-tsan -DDBN_SAN=thread && ...
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <memory>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "common/rng.hpp"
#include "common/thread_pool.hpp"
#include "core/batch_route_engine.hpp"
#include "core/distance.hpp"
#include "core/layer_table.hpp"
#include "core/route_engine.hpp"
#include "net/adaptive.hpp"
#include "debruijn/word.hpp"
#include "serve/protocol.hpp"
#include "serve/server.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace {

using namespace dbn;

Word random_word(Rng& rng, std::uint32_t d, std::size_t k) {
  std::vector<Digit> digits(k);
  for (auto& digit : digits) {
    digit = static_cast<Digit>(rng.below(d));
  }
  return Word(d, std::move(digits));
}

// --- ThreadPool -------------------------------------------------------------

TEST(ConcurrencyStressThreadPool, ChunkClaimingCoversEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  constexpr std::size_t kTotal = 20000;
  std::vector<std::atomic<std::uint32_t>> seen(kTotal);
  for (int round = 0; round < 10; ++round) {
    for (auto& cell : seen) {
      cell.store(0, std::memory_order_relaxed);
    }
    pool.parallel_for(kTotal, 7, [&](std::size_t begin, std::size_t end,
                                     std::size_t worker) {
      ASSERT_LT(worker, pool.thread_count());
      ASSERT_EQ(ThreadPool::current_worker(), worker);
      for (std::size_t i = begin; i < end; ++i) {
        seen[i].fetch_add(1, std::memory_order_relaxed);
      }
    });
    for (std::size_t i = 0; i < kTotal; ++i) {
      ASSERT_EQ(seen[i].load(std::memory_order_relaxed), 1u) << "index " << i;
    }
  }
}

TEST(ConcurrencyStressThreadPool, FirstExceptionWinsAndWorkersDrain) {
  ThreadPool pool(4);
  for (int round = 0; round < 25; ++round) {
    std::atomic<std::size_t> executed{0};
    try {
      pool.parallel_for(512, 1,
                        [&](std::size_t begin, std::size_t, std::size_t) {
                          executed.fetch_add(1, std::memory_order_relaxed);
                          if (begin % 97 == 13) {
                            throw std::runtime_error("chunk " +
                                                     std::to_string(begin));
                          }
                        });
      FAIL() << "an exception must propagate";
    } catch (const std::runtime_error& e) {
      EXPECT_NE(std::string(e.what()).find("chunk"), std::string::npos);
    }
    // The pool must be reusable immediately after a failed job.
    std::atomic<std::size_t> after{0};
    pool.parallel_for(64, 4,
                      [&](std::size_t begin, std::size_t end, std::size_t) {
                        after.fetch_add(end - begin,
                                        std::memory_order_relaxed);
                      });
    EXPECT_EQ(after.load(), 64u);
    EXPECT_GT(executed.load(), 0u);
  }
}

TEST(ConcurrencyStressThreadPool, PoolChurnConstructDestroyUnderLoad) {
  for (int round = 0; round < 40; ++round) {
    ThreadPool pool(3);
    std::atomic<std::uint64_t> sum{0};
    pool.parallel_for(1000, 16,
                      [&](std::size_t begin, std::size_t end, std::size_t) {
                        std::uint64_t local = 0;
                        for (std::size_t i = begin; i < end; ++i) {
                          local += i;
                        }
                        sum.fetch_add(local, std::memory_order_relaxed);
                      });
    EXPECT_EQ(sum.load(), 1000ull * 999ull / 2ull);
    // Destructor joins workers with no outstanding job.
  }
}

TEST(ConcurrencyStressThreadPool, IndependentPoolsRunConcurrently) {
  constexpr int kPools = 4;
  std::vector<std::thread> drivers;
  std::atomic<std::uint64_t> grand{0};
  drivers.reserve(kPools);
  for (int p = 0; p < kPools; ++p) {
    drivers.emplace_back([&grand] {
      ThreadPool pool(2);
      for (int round = 0; round < 20; ++round) {
        std::atomic<std::uint64_t> sum{0};
        pool.parallel_for(256, 8,
                          [&](std::size_t begin, std::size_t end,
                              std::size_t) {
                            sum.fetch_add(end - begin,
                                          std::memory_order_relaxed);
                          });
        grand.fetch_add(sum.load(), std::memory_order_relaxed);
      }
    });
  }
  for (auto& t : drivers) {
    t.join();
  }
  EXPECT_EQ(grand.load(), static_cast<std::uint64_t>(kPools) * 20u * 256u);
}

// --- MetricsRegistry --------------------------------------------------------

TEST(ConcurrencyStressMetrics, ShardMergeRacesIncrementsThenCountsExactly) {
  obs::MetricsRegistry registry;
  obs::Counter counter = registry.counter("stress.count");
  obs::Histogram histogram = registry.histogram("stress.hist", {1.0, 10.0, 100.0});
  obs::Gauge gauge = registry.gauge("stress.gauge");

  constexpr int kThreads = 4;
  constexpr int kPerThread = 25000;
  std::atomic<bool> stop_snapshots{false};

  // Snapshot continuously while increments are in flight: the merged view
  // must be a valid cut (monotone counter, count/bucket consistency), and
  // TSan must observe no race between merge traversal and shard growth.
  std::thread snapshotter([&] {
    std::uint64_t last = 0;
    while (!stop_snapshots.load(std::memory_order_acquire)) {
      const obs::MetricsSnapshot snap = registry.snapshot();
      if (const obs::MetricSnapshot* c = snap.find("stress.count")) {
        EXPECT_GE(c->count, last);
        last = c->count;
      }
      if (const obs::MetricSnapshot* h = snap.find("stress.hist")) {
        std::uint64_t total = 0;
        for (const std::uint64_t b : h->buckets) {
          total += b;
        }
        EXPECT_EQ(total, h->count);
      }
    }
  });

  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; ++i) {
        counter.inc();
        histogram.observe(static_cast<double>((t * kPerThread + i) % 128));
        gauge.set(t);
      }
    });
  }
  for (auto& w : workers) {
    w.join();
  }
  stop_snapshots.store(true, std::memory_order_release);
  snapshotter.join();

  // After the join the totals are exact, not approximate.
  const obs::MetricsSnapshot snap = registry.snapshot();
  const obs::MetricSnapshot* c = snap.find("stress.count");
  ASSERT_NE(c, nullptr);
  EXPECT_EQ(c->count, static_cast<std::uint64_t>(kThreads) * kPerThread);
  const obs::MetricSnapshot* h = snap.find("stress.hist");
  ASSERT_NE(h, nullptr);
  EXPECT_EQ(h->count, static_cast<std::uint64_t>(kThreads) * kPerThread);
}

TEST(ConcurrencyStressMetrics, ResetRacesIncrementsWithoutCorruption) {
  obs::MetricsRegistry registry;
  obs::Counter counter = registry.counter("reset.count");
  std::atomic<bool> stop{false};
  std::thread resetter([&] {
    while (!stop.load(std::memory_order_acquire)) {
      registry.reset();
    }
  });
  std::vector<std::thread> workers;
  for (int t = 0; t < 3; ++t) {
    workers.emplace_back([&] {
      for (int i = 0; i < 20000; ++i) {
        counter.inc();
      }
    });
  }
  for (auto& w : workers) {
    w.join();
  }
  stop.store(true, std::memory_order_release);
  resetter.join();
  // The surviving value is some suffix of the increments — bounded, never
  // garbage.
  const obs::MetricsSnapshot snap = registry.snapshot();
  const obs::MetricSnapshot* c = snap.find("reset.count");
  ASSERT_NE(c, nullptr);
  EXPECT_LE(c->count, 3u * 20000u);
}

TEST(ConcurrencyStressMetrics, LateRegistrationRacesTrafficOnOldMetrics) {
  obs::MetricsRegistry registry;
  obs::Counter first = registry.counter("late.first");
  std::atomic<bool> stop{false};
  std::vector<std::thread> workers;
  for (int t = 0; t < 2; ++t) {
    workers.emplace_back([&] {
      while (!stop.load(std::memory_order_acquire)) {
        first.inc();
      }
    });
  }
  // Registering new metrics (and first-touch growing other threads' shards)
  // must not race the in-flight increments on earlier offsets.
  std::vector<obs::Counter> extra;
  for (int i = 0; i < 200; ++i) {
    extra.push_back(registry.counter("late.extra." + std::to_string(i)));
    extra.back().inc();
  }
  stop.store(true, std::memory_order_release);
  for (auto& w : workers) {
    w.join();
  }
  const obs::MetricsSnapshot snap = registry.snapshot();
  for (int i = 0; i < 200; ++i) {
    const obs::MetricSnapshot* c = snap.find("late.extra." + std::to_string(i));
    ASSERT_NE(c, nullptr);
    EXPECT_EQ(c->count, 1u);
  }
}

// --- TraceSink --------------------------------------------------------------

// A sink that counts events and validates them minimally; emit() is called
// from every routing thread concurrently.
class CountingSink : public obs::TraceSink {
 public:
  void emit(const obs::TraceEvent& event) override {
    EXPECT_FALSE(event.name.empty());
    events_.fetch_add(1, std::memory_order_relaxed);
  }
  std::uint64_t events() const {
    return events_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t> events_{0};
};

TEST(ConcurrencyStressTrace, SinkFlipsMidRouteNeverCrashOrRace) {
  CountingSink sink;
  std::atomic<bool> stop{false};

  // Router threads: allocation-free engines with the tracing branch in the
  // hot path, racing the toggler below.
  constexpr int kRouters = 3;
  constexpr std::size_t kK = 12;
  std::vector<std::thread> routers;
  routers.reserve(kRouters);
  for (int t = 0; t < kRouters; ++t) {
    routers.emplace_back([&, t] {
      Rng rng(static_cast<std::uint64_t>(t) + 1);
      BidirectionalRouteEngine engine(kK);
      RoutingPath path;
      while (!stop.load(std::memory_order_acquire)) {
        const Word x = random_word(rng, 2, kK);
        const Word y = random_word(rng, 2, kK);
        engine.route_into(x, y, WildcardMode::Concrete, path);
        ASSERT_EQ(path.apply(x), y);
      }
    });
  }

  // Toggler: stress both transition directions and both steady states.
  // Each iteration does a burst of rapid flips (the mid-route transitions
  // TSan must prove safe) and then parks the sink in each state across a
  // yield — on a single-CPU host the routers only run inside the yield
  // windows, so without the parked-enabled window they would never observe
  // a non-null sink. Runs until events demonstrably landed (a fixed flip
  // count can finish before the router threads are even scheduled); the
  // cap keeps a broken build from spinning forever. The sink object stays
  // alive for the whole test, which is the documented lifetime contract.
  std::uint64_t flips = 0;
  while ((flips < 400 || sink.events() < 100) && flips < 40'000) {
    for (int i = 0; i < 16; ++i) {
      obs::set_trace_sink(i % 2 == 0 ? &sink : nullptr);
    }
    obs::set_trace_sink(&sink);
    std::this_thread::yield();
    obs::set_trace_sink(nullptr);
    std::this_thread::yield();
    flips += 18;
  }
  obs::set_trace_sink(nullptr);
  stop.store(true, std::memory_order_release);
  for (auto& t : routers) {
    t.join();
  }
  EXPECT_GT(sink.events(), 0u);
}

// --- BatchRouteEngine -------------------------------------------------------

TEST(ConcurrencyStressBatch, ShardedMemoCacheUnderParallelWorkers) {
  BatchRouteOptions options;
  options.threads = 4;
  options.chunk = 16;
  options.cache_entries = 64;  // tiny: force eviction/overwrite races
  options.cache_shards = 4;
  BatchRouteEngine engine(2, 10, options);

  Rng rng(7);
  std::vector<RouteQuery> queries;
  constexpr std::size_t kHot = 24;  // heavy slot contention
  for (std::size_t i = 0; i < kHot; ++i) {
    queries.push_back({random_word(rng, 2, 10), random_word(rng, 2, 10)});
  }
  std::vector<RouteQuery> batch;
  for (std::size_t i = 0; i < 4096; ++i) {
    batch.push_back(queries[i % kHot]);
  }

  const std::vector<RoutingPath> reference = engine.route_batch(batch);
  for (int round = 0; round < 5; ++round) {
    const std::vector<RoutingPath> out = engine.route_batch(batch);
    ASSERT_EQ(out.size(), reference.size());
    for (std::size_t i = 0; i < out.size(); ++i) {
      ASSERT_EQ(out[i], reference[i]) << "query " << i << " round " << round;
    }
  }
  EXPECT_GT(engine.last_stats().cache_hits, 0u);
}

TEST(ConcurrencyStressBatch, IndependentEnginesShareGlobalMetricsSafely) {
  constexpr int kEngines = 3;
  std::vector<std::thread> drivers;
  drivers.reserve(kEngines);
  for (int e = 0; e < kEngines; ++e) {
    drivers.emplace_back([e] {
      BatchRouteOptions options;
      options.threads = 2;
      options.cache_entries = 32;
      BatchRouteEngine engine(2, 8, options);
      Rng rng(static_cast<std::uint64_t>(e) + 100);
      std::vector<RouteQuery> batch;
      for (std::size_t i = 0; i < 512; ++i) {
        batch.push_back({random_word(rng, 2, 8), random_word(rng, 2, 8)});
      }
      for (int round = 0; round < 4; ++round) {
        const std::vector<RoutingPath> out = engine.route_batch(batch);
        for (std::size_t i = 0; i < out.size(); ++i) {
          ASSERT_EQ(out[i].apply(batch[i].x), batch[i].y);
        }
      }
    });
  }
  for (auto& t : drivers) {
    t.join();
  }
}

// --- LayerTable -------------------------------------------------------------

TEST(ConcurrencyStressLayerTable, ShardedViewCacheUnderCollidingDestinations) {
  const DeBruijnGraph g(2, 8, Orientation::Undirected);
  LayerTableOptions options;
  options.cache_destinations = 8;  // tiny: builds, hits and evictions race
  options.cache_shards = 2;
  LayerTable table(g, options);

  constexpr int kThreads = 4;
  constexpr int kRounds = 200;
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t] {
      Rng rng(static_cast<std::uint64_t>(t) + 900);
      for (int round = 0; round < kRounds; ++round) {
        // A small destination set maximizes slot contention; a pinned view
        // must stay internally consistent however many times its slot is
        // overwritten behind it.
        const std::uint64_t yr = rng.below(16);
        const auto view = table.view(g.word(yr));
        ASSERT_EQ(view->destination(), yr);
        ASSERT_EQ(view->distance(yr), 0);
        const std::uint64_t xr = rng.below(g.vertex_count());
        const int here = view->distance(xr);
        for (const std::uint64_t nr : g.neighbors(xr)) {
          const int there = view->distance(nr);
          ASSERT_LE(there, here + 1);
          ASSERT_GE(there, here - 1);
          (void)view->classify(xr, nr);
        }
      }
    });
  }
  for (auto& w : workers) {
    w.join();
  }
  const LayerTableStats stats = table.stats();
  EXPECT_EQ(stats.lookups, static_cast<std::size_t>(kThreads) * kRounds);
  EXPECT_GE(stats.builds, 16u);
  EXPECT_EQ(stats.builds + stats.hits, stats.lookups);
}

TEST(ConcurrencyStressLayerTable, AdaptiveWalksShareOneTable) {
  // The simulator hands one LayerTable to every in-flight walk; racing
  // whole walks (view pinning + classification under faults) is the
  // production access pattern.
  const DeBruijnGraph g(2, 7, Orientation::Undirected);
  LayerTable table(g);
  std::vector<bool> failed(g.vertex_count(), false);
  failed[3] = failed[17] = failed[64] = true;
  constexpr int kThreads = 3;
  std::vector<std::thread> walkers;
  walkers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    walkers.emplace_back([&, t] {
      Rng rng(static_cast<std::uint64_t>(t) + 1200);
      net::AdaptiveConfig config;
      config.jitter = 0.1;
      config.layers = &table;
      for (int trial = 0; trial < 150; ++trial) {
        const std::uint64_t xr = rng.below(g.vertex_count());
        const std::uint64_t yr = rng.below(g.vertex_count());
        if (failed[xr] || failed[yr]) {
          continue;
        }
        const net::AdaptiveResult r =
            adaptive_route(g, failed, g.word(xr), g.word(yr), rng, config);
        if (r.delivered && r.deflections == 0 && r.sideways_moves == 0) {
          ASSERT_EQ(r.hops, undirected_distance(g.word(xr), g.word(yr)));
        }
      }
    });
  }
  for (auto& w : walkers) {
    w.join();
  }
  EXPECT_GT(table.stats().hits, 0u);
}

// --- RouteServer ------------------------------------------------------------

// Many clients feed concurrently while one thread polls stats() and
// queue_depth() and another begins the drain mid-flight. Under TSan this
// exercises the admission mutex, the per-connection write mutex, the
// dispatcher handoff and the atomic counters all at once; under the
// normal build the exactly-once accounting assertions still bite.
TEST(ConcurrencyStressServe, ConcurrentClientsPollersAndDrain) {
  serve::ServeConfig config;
  config.d = 2;
  config.k = 10;
  config.threads = 2;
  config.cache_entries = 128;
  config.queue_capacity = 64;  // small enough that shedding really happens
  config.max_batch = 16;
  serve::RouteServer server(config);

  constexpr std::size_t kClients = 4;
  constexpr std::uint64_t kPerClient = 400;
  struct ClientState {
    std::mutex mutex;
    std::string bytes;
    std::shared_ptr<serve::Connection> conn;
  };
  std::vector<std::unique_ptr<ClientState>> clients;
  for (std::size_t c = 0; c < kClients; ++c) {
    auto state = std::make_unique<ClientState>();
    ClientState* raw = state.get();
    state->conn = server.connect([raw](std::string_view frames) {
      const std::lock_guard<std::mutex> lock(raw->mutex);
      raw->bytes.append(frames);
    });
    clients.push_back(std::move(state));
  }

  std::atomic<bool> stop_polling{false};
  std::thread poller([&server, &stop_polling] {
    while (!stop_polling.load(std::memory_order_acquire)) {
      const serve::ServeStats stats = server.stats();
      ASSERT_GE(stats.requests, stats.responses_ok);
      (void)server.queue_depth();
      std::this_thread::yield();
    }
  });

  std::vector<std::thread> feeders;
  feeders.reserve(kClients);
  for (std::size_t c = 0; c < kClients; ++c) {
    feeders.emplace_back([&, c] {
      Rng rng(static_cast<std::uint64_t>(c) + 500);
      std::string frame;
      for (std::uint64_t i = 0; i < kPerClient; ++i) {
        frame.clear();
        serve::encode_route_request(
            (static_cast<std::uint64_t>(c) << 48) | i,
            random_word(rng, config.d, config.k),
            random_word(rng, config.d, config.k), frame);
        ASSERT_TRUE(clients[c]->conn->feed(frame));
      }
    });
  }
  for (auto& t : feeders) {
    t.join();
  }
  server.begin_drain();
  server.wait_drained();
  stop_polling.store(true, std::memory_order_release);
  poller.join();

  // Every admitted request was answered exactly once, across all clients.
  const serve::ServeStats stats = server.stats();
  EXPECT_EQ(stats.requests, kClients * kPerClient);
  EXPECT_EQ(stats.responses_ok + stats.rejected_overload +
                stats.rejected_draining,
            kClients * kPerClient);
  std::size_t total_frames = 0;
  for (const auto& client : clients) {
    serve::FrameReader reader;
    const std::lock_guard<std::mutex> lock(client->mutex);
    reader.feed(client->bytes);
    std::string payload;
    while (reader.next(payload) == serve::FrameReader::Result::Frame) {
      ++total_frames;
    }
    ASSERT_EQ(reader.pending_bytes(), 0u);
  }
  EXPECT_EQ(total_frames, kClients * kPerClient);
}

TEST(ConcurrencyStressBatch, DistanceBatchMatchesRouteLengths) {
  BatchRouteOptions options;
  options.threads = 4;
  options.chunk = 32;
  BatchRouteEngine engine(3, 7, options);
  Rng rng(11);
  std::vector<RouteQuery> batch;
  for (std::size_t i = 0; i < 2048; ++i) {
    batch.push_back({random_word(rng, 3, 7), random_word(rng, 3, 7)});
  }
  const std::vector<int> distances = engine.distance_batch(batch);
  const std::vector<RoutingPath> paths = engine.route_batch(batch);
  ASSERT_EQ(distances.size(), paths.size());
  for (std::size_t i = 0; i < paths.size(); ++i) {
    ASSERT_EQ(static_cast<std::size_t>(distances[i]), paths[i].length());
  }
}

}  // namespace
