#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "common/contract.hpp"
#include "common/rng.hpp"
#include "debruijn/sequence.hpp"
#include "strings/lyndon.hpp"
#include "testing_util.hpp"

namespace dbn::strings {
namespace {

using dbn::testing::random_symbols;

bool brute_is_lyndon(const std::vector<Symbol>& s) {
  if (s.empty()) {
    return false;
  }
  for (std::size_t i = 1; i < s.size(); ++i) {
    const std::vector<Symbol> suffix(s.begin() + static_cast<long>(i), s.end());
    if (!std::lexicographical_compare(s.begin(), s.end(), suffix.begin(),
                                      suffix.end())) {
      return false;
    }
  }
  return true;
}

std::vector<Symbol> rotated(const std::vector<Symbol>& s, std::size_t r) {
  std::vector<Symbol> out(s.begin() + static_cast<long>(r), s.end());
  out.insert(out.end(), s.begin(), s.begin() + static_cast<long>(r));
  return out;
}

TEST(Lyndon, FactorizationKnownExample) {
  // "banana" = b >= anan? Duval: b | anan? The classic: banana ->
  // b, anan? no: factors must be non-increasing Lyndon words:
  // b | an | an | a.
  const auto s = to_symbols("banana");
  const auto f = lyndon_factorization(s);
  ASSERT_EQ(f.size(), 4u);
  EXPECT_EQ(f[0], (std::pair<std::size_t, std::size_t>{0, 1}));  // b
  EXPECT_EQ(f[1], (std::pair<std::size_t, std::size_t>{1, 2}));  // an
  EXPECT_EQ(f[2], (std::pair<std::size_t, std::size_t>{3, 2}));  // an
  EXPECT_EQ(f[3], (std::pair<std::size_t, std::size_t>{5, 1}));  // a
}

TEST(Lyndon, FactorizationPropertiesOnRandomStrings) {
  Rng rng(909);
  for (int trial = 0; trial < 300; ++trial) {
    const auto s = random_symbols(rng, 1 + rng.below(40), 2 + trial % 3);
    const auto factors = lyndon_factorization(s);
    // Covers s exactly.
    std::size_t at = 0;
    for (const auto& [start, len] : factors) {
      EXPECT_EQ(start, at);
      at += len;
      // Every factor is Lyndon.
      const std::vector<Symbol> w(s.begin() + static_cast<long>(start),
                                  s.begin() + static_cast<long>(start + len));
      EXPECT_TRUE(brute_is_lyndon(w)) << "trial " << trial;
    }
    EXPECT_EQ(at, s.size());
    // Factors are non-increasing.
    for (std::size_t i = 1; i < factors.size(); ++i) {
      const auto& [s1, l1] = factors[i - 1];
      const auto& [s2, l2] = factors[i];
      const std::vector<Symbol> a(s.begin() + static_cast<long>(s1),
                                  s.begin() + static_cast<long>(s1 + l1));
      const std::vector<Symbol> b(s.begin() + static_cast<long>(s2),
                                  s.begin() + static_cast<long>(s2 + l2));
      EXPECT_FALSE(std::lexicographical_compare(a.begin(), a.end(), b.begin(),
                                                b.end()))
          << "factors must be non-increasing, trial " << trial;
    }
  }
}

TEST(Lyndon, IsLyndonMatchesBruteForce) {
  Rng rng(910);
  for (int trial = 0; trial < 400; ++trial) {
    const auto s = random_symbols(rng, 1 + rng.below(12), 2);
    EXPECT_EQ(is_lyndon(s), brute_is_lyndon(s)) << "trial " << trial;
  }
  EXPECT_FALSE(is_lyndon({}));
}

TEST(Lyndon, LeastRotationMatchesBruteForce) {
  Rng rng(911);
  for (int trial = 0; trial < 400; ++trial) {
    const auto s = random_symbols(rng, 1 + rng.below(24), 2 + trial % 3);
    const std::size_t r = least_rotation(s);
    ASSERT_LT(r, s.size());
    const auto best = rotated(s, r);
    for (std::size_t i = 0; i < s.size(); ++i) {
      const auto candidate = rotated(s, i);
      EXPECT_FALSE(std::lexicographical_compare(
          candidate.begin(), candidate.end(), best.begin(), best.end()))
          << "trial " << trial << " rotation " << i;
    }
  }
}

TEST(Lyndon, NecklaceCountKnownValues) {
  // Binary necklaces: n=1:2, 2:3, 3:4, 4:6, 5:8, 6:14 (OEIS A000031).
  EXPECT_EQ(necklace_count(2, 1), 2u);
  EXPECT_EQ(necklace_count(2, 2), 3u);
  EXPECT_EQ(necklace_count(2, 3), 4u);
  EXPECT_EQ(necklace_count(2, 4), 6u);
  EXPECT_EQ(necklace_count(2, 5), 8u);
  EXPECT_EQ(necklace_count(2, 6), 14u);
  // Ternary: n=3 -> 11.
  EXPECT_EQ(necklace_count(3, 3), 11u);
}

TEST(Lyndon, NecklaceCountMatchesOrbitEnumeration) {
  // Count rotation orbits of all d-ary words of length n by canonical
  // representatives (least rotation).
  for (const auto& [d, n] : std::vector<std::pair<std::uint32_t, std::size_t>>{
           {2, 5}, {2, 8}, {3, 4}, {4, 3}}) {
    std::set<std::vector<Symbol>> canon;
    const std::uint64_t total = [&] {
      std::uint64_t t = 1;
      for (std::size_t i = 0; i < n; ++i) {
        t *= d;
      }
      return t;
    }();
    for (std::uint64_t r = 0; r < total; ++r) {
      std::vector<Symbol> w(n);
      std::uint64_t v = r;
      for (std::size_t i = n; i-- > 0;) {
        w[i] = static_cast<Symbol>(v % d);
        v /= d;
      }
      canon.insert(rotated(w, least_rotation(w)));
    }
    EXPECT_EQ(canon.size(), necklace_count(d, n)) << "d=" << d << " n=" << n;
  }
}

TEST(Lyndon, FkmSequenceIsSortedLyndonConcatenation) {
  // The FKM theorem: B(d,n) is the concatenation, in lexicographic order,
  // of all Lyndon words over [0,d) whose length divides n. Enumerate those
  // words directly and compare.
  for (const auto& [d, n] : std::vector<std::pair<std::uint32_t, std::size_t>>{
           {2, 4}, {2, 6}, {3, 3}}) {
    std::vector<std::vector<Symbol>> lyndon_words;
    for (std::size_t len = 1; len <= n; ++len) {
      if (n % len != 0) {
        continue;
      }
      std::uint64_t total = 1;
      for (std::size_t i = 0; i < len; ++i) {
        total *= d;
      }
      for (std::uint64_t r = 0; r < total; ++r) {
        std::vector<Symbol> w(len);
        std::uint64_t v = r;
        for (std::size_t i = len; i-- > 0;) {
          w[i] = static_cast<Symbol>(v % d);
          v /= d;
        }
        if (is_lyndon(w)) {
          lyndon_words.push_back(std::move(w));
        }
      }
    }
    std::sort(lyndon_words.begin(), lyndon_words.end());
    std::vector<Symbol> expected;
    for (const auto& w : lyndon_words) {
      expected.insert(expected.end(), w.begin(), w.end());
    }
    const auto seq = dbn::de_bruijn_sequence(d, n);
    const std::vector<Symbol> symbols(seq.begin(), seq.end());
    EXPECT_EQ(symbols, expected) << "d=" << d << " n=" << n;
  }
}

TEST(Lyndon, PrimitivityMatchesDefinition) {
  EXPECT_TRUE(is_primitive(to_symbols("ab")));
  EXPECT_FALSE(is_primitive(to_symbols("abab")));
  EXPECT_FALSE(is_primitive(to_symbols("aaa")));
  EXPECT_TRUE(is_primitive(to_symbols("aab")));
  EXPECT_FALSE(is_primitive({}));
  Rng rng(912);
  for (int trial = 0; trial < 200; ++trial) {
    const auto s = random_symbols(rng, 1 + rng.below(16), 2);
    bool power = false;
    for (std::size_t len = 1; len < s.size(); ++len) {
      if (s.size() % len != 0) {
        continue;
      }
      bool matches = true;
      for (std::size_t i = len; i < s.size() && matches; ++i) {
        matches = s[i] == s[i - len];
      }
      power |= matches;
    }
    EXPECT_EQ(is_primitive(s), !power) << "trial " << trial;
  }
}

}  // namespace
}  // namespace dbn::strings
