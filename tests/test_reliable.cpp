#include <gtest/gtest.h>

#include "common/contract.hpp"
#include "common/rng.hpp"
#include "core/routers.hpp"
#include "net/fault.hpp"
#include "net/reliable.hpp"
#include "testing_util.hpp"

namespace dbn::net {
namespace {

AttemptRouter wildcard_router() {
  return [](const Word& x, const Word& y, int) {
    return route_bidirectional_suffix_tree(x, y, WildcardMode::Wildcards);
  };
}

std::vector<Transfer> random_transfers(std::uint64_t n, std::size_t count,
                                       Rng& rng) {
  std::vector<Transfer> transfers(count);
  for (auto& t : transfers) {
    t.source = rng.below(n);
    t.destination = rng.below(n);
  }
  return transfers;
}

TEST(Reliable, LosslessNetworkNeedsNoRetransmissions) {
  SimConfig config;
  config.radix = 2;
  config.k = 5;
  Simulator sim(config);
  Rng rng(1);
  const auto transfers = random_transfers(32, 50, rng);
  const ReliableReport report =
      run_reliable(sim, transfers, wildcard_router());
  EXPECT_EQ(report.transfers, 50u);
  EXPECT_EQ(report.completed, 50u);
  EXPECT_EQ(report.retransmissions, 0u);
  EXPECT_EQ(report.abandoned, 0u);
}

TEST(Reliable, RecoversOverflowDrops) {
  // Tiny queues + a burst: the raw network drops, the protocol recovers.
  SimConfig config;
  config.radix = 2;
  config.k = 5;
  config.link_queue_capacity = 1;
  config.wildcard_policy = WildcardPolicy::Random;
  config.seed = 3;
  Simulator sim(config);
  Rng rng(2);
  // Everybody sends to the same site at the same instant.
  std::vector<Transfer> transfers;
  for (std::uint64_t src = 0; src < 32; ++src) {
    transfers.push_back({src, 7});
  }
  ReliableConfig rc;
  rc.timeout = 64.0;
  rc.max_attempts = 30;
  const ReliableReport report =
      run_reliable(sim, transfers, wildcard_router(), rc);
  EXPECT_EQ(report.completed, transfers.size());
  EXPECT_EQ(report.abandoned, 0u);
  EXPECT_GT(report.retransmissions, 0u)
      << "the burst must overflow capacity-1 queues";
  EXPECT_GT(sim.stats().dropped_overflow, 0u);
}

TEST(Reliable, RoutesAroundFaultsWithAFaultAwareAttemptRouter) {
  const DeBruijnGraph g(2, 5, Orientation::Undirected);
  Rng rng(5);
  const auto failed = random_fault_set(g, 1, rng);
  SimConfig config;
  config.radix = 2;
  config.k = 5;
  Simulator sim(config);
  for (std::uint64_t v = 0; v < g.vertex_count(); ++v) {
    if (failed[v]) {
      sim.fail_node(v);
    }
  }
  const FaultAwareRouter fault_router(g, failed);
  // First attempt uses the oblivious shortest path (may cross the dead
  // site); retries fall back to the fault-aware route.
  const AttemptRouter router = [&](const Word& x, const Word& y, int attempt) {
    if (attempt == 0) {
      return route_bidirectional_mp(x, y);
    }
    auto path = fault_router.route(x, y);
    return path.value_or(RoutingPath{});
  };
  std::vector<Transfer> transfers;
  Rng pick(6);
  while (transfers.size() < 40) {
    const std::uint64_t s = pick.below(g.vertex_count());
    const std::uint64_t t = pick.below(g.vertex_count());
    if (!failed[s] && !failed[t]) {
      transfers.push_back({s, t});
    }
  }
  const ReliableReport report = run_reliable(sim, transfers, router);
  EXPECT_EQ(report.completed, transfers.size());
  EXPECT_EQ(report.abandoned, 0u);
}

TEST(Reliable, AbandonsAfterMaxAttemptsWhenDestinationIsDead) {
  SimConfig config;
  config.radix = 2;
  config.k = 4;
  Simulator sim(config);
  sim.fail_node(9);
  ReliableConfig rc;
  rc.timeout = 16.0;
  rc.max_attempts = 3;
  const ReliableReport report = run_reliable(
      sim, {Transfer{1, 9}}, wildcard_router(), rc);
  EXPECT_EQ(report.completed, 0u);
  EXPECT_EQ(report.abandoned, 1u);
  EXPECT_EQ(report.retransmissions, 2u);  // attempts 2 and 3
}

TEST(Reliable, RejectsBadConfig) {
  SimConfig config;
  Simulator sim(config);
  ReliableConfig rc;
  rc.timeout = 0.0;
  EXPECT_THROW(run_reliable(sim, {}, wildcard_router(), rc),
               ContractViolation);
}

}  // namespace
}  // namespace dbn::net
