#include <gtest/gtest.h>

#include <sstream>

#include "common/ascii_plot.hpp"
#include "common/contract.hpp"

namespace dbn {
namespace {

TEST(AsciiPlot, RendersPointsAndLegend) {
  AsciiPlot plot(40, 10);
  plot.add_series({{0, 1, 2, 3}, {0, 1, 2, 3}, 'a', "line a"});
  plot.add_series({{0, 1, 2, 3}, {3, 2, 1, 0}, 'b', "line b"});
  std::ostringstream os;
  plot.print(os, "title");
  const std::string out = os.str();
  EXPECT_NE(out.find("title"), std::string::npos);
  EXPECT_NE(out.find('a'), std::string::npos);
  EXPECT_NE(out.find('b'), std::string::npos);
  EXPECT_NE(out.find("a = line a"), std::string::npos);
  EXPECT_NE(out.find("b = line b"), std::string::npos);
  EXPECT_NE(out.find('+'), std::string::npos);  // axis corner
}

TEST(AsciiPlot, MonotoneSeriesRendersMonotonically) {
  AsciiPlot plot(40, 10);
  plot.add_series({{0, 1, 2, 3, 4}, {0, 1, 2, 3, 4}, '*', "diag"});
  std::ostringstream os;
  plot.print(os);
  // Scan the grid rows: the '*' column index must decrease as rows go down
  // never increase (y increases upward).
  std::istringstream lines(os.str());
  std::string line;
  long prev_col = -1;
  while (std::getline(lines, line)) {
    const std::size_t bar = line.find('|');
    if (bar == std::string::npos) {
      continue;
    }
    const std::size_t star = line.find('*', bar);
    if (star == std::string::npos) {
      continue;
    }
    const long col = static_cast<long>(star - bar);
    if (prev_col >= 0) {
      EXPECT_LT(col, prev_col) << "rows go down => x must shrink";
    }
    prev_col = col;
  }
  EXPECT_GE(prev_col, 0) << "at least one point rendered";
}

TEST(AsciiPlot, EmptyPlotAndDegenerateRanges) {
  AsciiPlot empty(20, 5);
  std::ostringstream os;
  empty.print(os);
  EXPECT_NE(os.str().find("(empty plot)"), std::string::npos);

  AsciiPlot flat(20, 5);
  flat.add_series({{1, 1, 1}, {2, 2, 2}, 'x', "point"});
  std::ostringstream os2;
  EXPECT_NO_THROW(flat.print(os2));
  EXPECT_NE(os2.str().find('x'), std::string::npos);
}

TEST(AsciiPlot, RejectsBadInput) {
  EXPECT_THROW(AsciiPlot(4, 2), ContractViolation);
  AsciiPlot plot(20, 5);
  EXPECT_THROW(plot.add_series({{1, 2}, {1}, 'x', "bad"}), ContractViolation);
}

}  // namespace
}  // namespace dbn
