// Chaos-layer tests: FaultSchedule semantics on the simulator, the
// run_reliable report invariants the ISSUE names (accounting, retry
// budget, completion-time monotonicity in the timeout), backoff/jitter
// window shapes, receiver-side dedup, and the chaos engine itself
// (text round-trip, invariant sweeps, the shrinker, fuzz determinism).
#include <gtest/gtest.h>

#include <string>
#include <unordered_set>
#include <vector>

#include "common/contract.hpp"
#include "common/rng.hpp"
#include "core/distance.hpp"
#include "core/routers.hpp"
#include "net/fault.hpp"
#include "net/reliable.hpp"
#include "net/simulator.hpp"
#include "testkit/chaos.hpp"
#include "testing_util.hpp"

namespace dbn::net {
namespace {

TEST(ChaosSchedule, EventsSortStablyByTime) {
  FaultSchedule s;
  s.site_crash(5.0, 1);
  s.link_crash(2.0, 0, 1);
  s.site_recover(5.0, 1);  // same instant: insertion order must survive
  s.site_crash(0.0, 3);
  const auto& ev = s.events();
  ASSERT_EQ(ev.size(), 4u);
  EXPECT_EQ(ev[0].time, 0.0);
  EXPECT_EQ(ev[1].time, 2.0);
  EXPECT_EQ(ev[2].kind, FaultEventKind::SiteCrash);
  EXPECT_EQ(ev[3].kind, FaultEventKind::SiteRecover);
}

TEST(ChaosSchedule, FlapExpandsToAlternatingCrashRecoverPairs) {
  FaultSchedule s;
  s.site_flap(5, 10.0, 2.0, 3.0, 3);
  const auto& ev = s.events();
  ASSERT_EQ(ev.size(), 6u);
  const double down_at[] = {10.0, 15.0, 20.0};
  for (int cycle = 0; cycle < 3; ++cycle) {
    EXPECT_EQ(ev[2 * cycle].kind, FaultEventKind::SiteCrash);
    EXPECT_EQ(ev[2 * cycle].time, down_at[cycle]);
    EXPECT_EQ(ev[2 * cycle + 1].kind, FaultEventKind::SiteRecover);
    EXPECT_EQ(ev[2 * cycle + 1].time, down_at[cycle] + 2.0);
    EXPECT_EQ(ev[2 * cycle].a, 5u);
  }
}

TEST(ChaosSchedule, CrashAppliesBeforeArrivalAtTheSameInstant) {
  // D(000, 111) = 3, so with link_delay 1 the message lands on site 7 at
  // exactly t = 3 — the instant the schedule kills it. Crash wins.
  SimConfig config;
  config.radix = 2;
  config.k = 3;
  Simulator sim(config);
  const Word src = Word::zero(2, 3);
  const Word dst(2, {1, 1, 1});
  const RoutingPath path = route_bidirectional_mp(src, dst);
  ASSERT_EQ(path.length(), 3u);
  FaultSchedule schedule;
  schedule.site_crash(3.0, dst.rank());
  sim.set_fault_schedule(schedule);
  sim.inject(0.0, Message(ControlCode::Data, src, dst, path));
  sim.run();
  EXPECT_EQ(sim.stats().delivered, 0u);
  EXPECT_EQ(sim.stats().dropped_fault, 1u);
  EXPECT_EQ(sim.stats().fault_events_applied, 1u);
  EXPECT_TRUE(sim.is_failed(dst.rank()));
}

TEST(ChaosSchedule, RecoveryRestoresDelivery) {
  SimConfig config;
  config.radix = 2;
  config.k = 3;
  Simulator sim(config);
  const Word src = Word::zero(2, 3);
  const Word dst(2, {1, 1, 1});
  const RoutingPath path = route_bidirectional_mp(src, dst);
  FaultSchedule schedule;
  schedule.site_crash(3.0, dst.rank());
  schedule.site_recover(3.5, dst.rank());
  sim.set_fault_schedule(schedule);
  sim.inject(0.0, Message(ControlCode::Data, src, dst, path));  // dies at 3
  sim.inject(1.0, Message(ControlCode::Data, src, dst, path));  // lands at 4
  sim.run();
  EXPECT_EQ(sim.stats().dropped_fault, 1u);
  EXPECT_EQ(sim.stats().delivered, 1u);
  EXPECT_EQ(sim.stats().fault_events_applied, 2u);
  EXPECT_FALSE(sim.is_failed(dst.rank()));
}

TEST(ChaosSchedule, LinkFlapDropsOnlyDuringDownWindows) {
  SimConfig config;
  config.radix = 2;
  config.k = 3;
  Simulator sim(config);
  const Word src = Word::zero(2, 3);
  const Word dst(2, {1, 1, 1});
  const RoutingPath path = route_bidirectional_mp(src, dst);
  const Word first_hop = src.left_shift(path.hop(0).digit);
  FaultSchedule schedule;
  schedule.link_flap(src.rank(), first_hop.rank(), 0.0, 2.0, 2.0, 2);
  sim.set_fault_schedule(schedule);
  // t = 0: the link is inside its first down window -> dropped.
  sim.inject(0.0, Message(ControlCode::Data, src, dst, path));
  // t = 2: the recovery at 2.0 applies before the forward at 2.0 -> clean.
  sim.inject(2.0, Message(ControlCode::Data, src, dst, path));
  sim.run();
  EXPECT_EQ(sim.stats().dropped_link, 1u);
  EXPECT_EQ(sim.stats().delivered, 1u);
}

TEST(ChaosSchedule, WindowedRunAdvancesFaultStateWithoutTraffic) {
  SimConfig config;
  config.radix = 2;
  config.k = 3;
  Simulator sim(config);
  FaultSchedule schedule;
  schedule.site_crash(5.0, 2);
  sim.set_fault_schedule(schedule);
  EXPECT_EQ(sim.pending_fault_events(), 1u);
  sim.run(2.0);
  EXPECT_FALSE(sim.is_failed(2)) << "the crash at 5 is still in the future";
  EXPECT_EQ(sim.pending_fault_events(), 1u);
  sim.run(10.0);
  EXPECT_TRUE(sim.is_failed(2));
  EXPECT_EQ(sim.pending_fault_events(), 0u);
  EXPECT_EQ(sim.stats().fault_events_applied, 1u);
}

TEST(ChaosSchedule, PastEventsApplyOnInstall) {
  SimConfig config;
  config.radix = 2;
  config.k = 3;
  Simulator sim(config);
  FaultSchedule schedule;
  schedule.site_crash(0.0, 6);
  sim.set_fault_schedule(schedule);
  EXPECT_TRUE(sim.is_failed(6)) << "events at or before now() apply eagerly";
  EXPECT_EQ(sim.pending_fault_events(), 0u);
}

TEST(ChaosSchedule, RejectsOutOfRangeRanks) {
  SimConfig config;
  config.radix = 2;
  config.k = 3;  // N = 8
  Simulator sim(config);
  FaultSchedule bad_site;
  bad_site.site_crash(1.0, 8);
  EXPECT_THROW(sim.set_fault_schedule(bad_site), ContractViolation);
  FaultSchedule bad_link;
  bad_link.link_crash(1.0, 0, 8);
  EXPECT_THROW(sim.set_fault_schedule(bad_link), ContractViolation);
}

AttemptRouter fault_steering_router(
    const DeBruijnGraph& g, const std::vector<bool>& failed,
    const std::unordered_set<std::uint64_t>& failed_links) {
  return [&g, &failed, &failed_links](const Word& x, const Word& y,
                                      int attempt) {
    if (attempt == 0) {
      return route_bidirectional_mp(x, y);
    }
    const auto detour = route_avoiding(g, failed, failed_links, x, y);
    return detour.value_or(route_bidirectional_mp(x, y));
  };
}

TEST(ChaosReliable, AccountingAndRetryBudgetHoldAcrossFaultDensities) {
  const DeBruijnGraph g(2, 5, Orientation::Undirected);
  const std::unordered_set<std::uint64_t> no_links;
  DBN_SEEDED_RNG(rng, 0xCA05);
  for (std::size_t faults = 0; faults <= 3; ++faults) {
    for (int round = 0; round < 4; ++round) {
      const auto failed = random_fault_set(g, faults, rng);
      SimConfig config;
      config.radix = 2;
      config.k = 5;
      config.seed = rng();
      Simulator sim(config);
      for (std::uint64_t v = 0; v < g.vertex_count(); ++v) {
        if (failed[v]) {
          sim.fail_node(v);
        }
      }
      std::vector<Transfer> transfers(16);
      for (auto& t : transfers) {
        t.source = rng.below(g.vertex_count());
        t.destination = rng.below(g.vertex_count());
      }
      ReliableConfig rc;
      rc.timeout = 8.0;
      rc.max_attempts = 1 + static_cast<int>(rng.below(4));
      rc.backoff = 2.0;
      rc.jitter = 0.2;
      rc.record_attempts = true;
      const ReliableReport report = run_reliable(
          sim, transfers, fault_steering_router(g, failed, no_links), rc);
      SCOPED_TRACE("faults=" + std::to_string(faults) +
                   " attempts=" + std::to_string(rc.max_attempts));
      EXPECT_EQ(report.transfers, transfers.size());
      EXPECT_EQ(report.completed + report.abandoned, report.transfers);
      EXPECT_LE(report.retransmissions,
                report.transfers *
                    static_cast<std::uint64_t>(rc.max_attempts - 1));
      ASSERT_EQ(report.traces.size(), transfers.size());
      for (const TransferTrace& trace : report.traces) {
        ASSERT_FALSE(trace.attempts.empty());
        EXPECT_LE(trace.attempts.size(),
                  static_cast<std::size_t>(rc.max_attempts));
        for (std::size_t i = 1; i < trace.attempts.size(); ++i) {
          EXPECT_LT(trace.attempts[i - 1].sent_at, trace.attempts[i].sent_at);
        }
        if (trace.completed) {
          EXPECT_LE(trace.completed_at, report.completion_time);
        } else {
          EXPECT_EQ(trace.attempts.size(),
                    static_cast<std::size_t>(rc.max_attempts))
              << "abandonment requires a spent budget";
        }
      }
    }
  }
}

TEST(ChaosReliable, CompletionTimeIsMonotoneInTheTimeout) {
  // With one transfer, a deterministic per-attempt router and static
  // faults, the attempt index that succeeds is independent of the timeout,
  // so stretching the windows can only move the completion later.
  const DeBruijnGraph g(2, 4, Orientation::Undirected);
  const std::unordered_set<std::uint64_t> no_links;
  DBN_SEEDED_RNG(rng, 0xC10C);
  int completed_runs = 0;
  for (int trial = 0; trial < 30; ++trial) {
    const auto failed = random_fault_set(g, rng.below(4), rng);
    const std::uint64_t s = rng.below(g.vertex_count());
    const std::uint64_t t = rng.below(g.vertex_count());
    if (failed[s] || failed[t]) {
      continue;
    }
    SCOPED_TRACE("trial " + std::to_string(trial));
    double previous_completion = -1.0;
    int previous_completed = -1;
    for (const double timeout : {4.0, 8.0, 16.0, 32.0}) {
      SimConfig config;
      config.radix = 2;
      config.k = 4;
      Simulator sim(config);
      for (std::uint64_t v = 0; v < g.vertex_count(); ++v) {
        if (failed[v]) {
          sim.fail_node(v);
        }
      }
      ReliableConfig rc;
      rc.timeout = timeout;
      rc.max_attempts = 4;
      rc.backoff = 2.0;
      const ReliableReport report =
          run_reliable(sim, {Transfer{s, t}},
                       fault_steering_router(g, failed, no_links), rc);
      EXPECT_EQ(report.completed + report.abandoned, 1u);
      if (previous_completed >= 0) {
        EXPECT_EQ(static_cast<int>(report.completed), previous_completed)
            << "whether the transfer completes must not depend on the timeout";
      }
      previous_completed = static_cast<int>(report.completed);
      if (report.completed == 1u) {
        ++completed_runs;
        EXPECT_GE(report.completion_time + 1e-9, previous_completion)
            << "timeout " << timeout;
        previous_completion = report.completion_time;
      }
    }
  }
  EXPECT_GT(completed_runs, 0) << "the sweep must exercise completions";
}

TEST(ChaosReliable, BackoffWindowsGrowGeometricallyAndRespectTheCap) {
  SimConfig config;
  config.radix = 2;
  config.k = 4;
  Simulator sim(config);
  sim.fail_node(9);  // dead destination: every attempt is spent
  ReliableConfig rc;
  rc.timeout = 4.0;
  rc.backoff = 2.0;
  rc.max_timeout = 10.0;
  rc.max_attempts = 5;
  rc.record_attempts = true;
  const AttemptRouter router = [](const Word& x, const Word& y, int) {
    return route_bidirectional_mp(x, y);
  };
  const ReliableReport report =
      run_reliable(sim, {Transfer{1, 9}}, router, rc);
  EXPECT_EQ(report.abandoned, 1u);
  EXPECT_EQ(report.retransmissions, 4u);
  ASSERT_EQ(report.traces.size(), 1u);
  const TransferTrace& trace = report.traces[0];
  ASSERT_EQ(trace.attempts.size(), 5u);
  const double expected_window[] = {4.0, 8.0, 10.0, 10.0, 10.0};
  double expected_sent = 0.0;
  for (int i = 0; i < 5; ++i) {
    EXPECT_DOUBLE_EQ(trace.attempts[i].window, expected_window[i]) << i;
    EXPECT_DOUBLE_EQ(trace.attempts[i].sent_at, expected_sent) << i;
    expected_sent += expected_window[i];
  }
}

TEST(ChaosReliable, JitterStretchesWindowsBoundedlyAndDeterministically) {
  const auto run_once = [] {
    SimConfig config;
    config.radix = 2;
    config.k = 4;
    Simulator sim(config);
    sim.fail_node(9);
    ReliableConfig rc;
    rc.timeout = 4.0;
    rc.backoff = 2.0;
    rc.max_attempts = 4;
    rc.jitter = 0.5;
    rc.jitter_seed = 77;
    rc.record_attempts = true;
    const AttemptRouter router = [](const Word& x, const Word& y, int) {
      return route_bidirectional_mp(x, y);
    };
    return run_reliable(sim, {Transfer{1, 9}, Transfer{3, 9}}, router, rc);
  };
  const ReliableReport a = run_once();
  const ReliableReport b = run_once();
  ASSERT_EQ(a.traces.size(), 2u);
  bool saw_stretch = false;
  for (std::size_t id = 0; id < a.traces.size(); ++id) {
    ASSERT_EQ(a.traces[id].attempts.size(), b.traces[id].attempts.size());
    double base = 4.0;
    for (std::size_t i = 0; i < a.traces[id].attempts.size(); ++i) {
      const AttemptRecord& ra = a.traces[id].attempts[i];
      const AttemptRecord& rb = b.traces[id].attempts[i];
      EXPECT_DOUBLE_EQ(ra.window, rb.window) << "jitter must replay";
      EXPECT_DOUBLE_EQ(ra.sent_at, rb.sent_at);
      EXPECT_GE(ra.window, base);
      EXPECT_LT(ra.window, base * 1.5);
      saw_stretch = saw_stretch || ra.window > base;
      base *= 2.0;
    }
  }
  EXPECT_TRUE(saw_stretch) << "jitter 0.5 should stretch some window";
}

TEST(ChaosReliable, DuplicateDeliveriesAreDedupedAndStopRetransmission) {
  // D(00000, 11111) = 5 with delay 1, but the timeout is 2: attempts go
  // out at t = 0, 2, 4 before the first copy lands at t = 5. All three
  // copies are delivered by the network; the receiver keeps one.
  SimConfig config;
  config.radix = 2;
  config.k = 5;
  Simulator sim(config);
  const Word src = Word::zero(2, 5);
  const Word dst(2, {1, 1, 1, 1, 1});
  ASSERT_EQ(undirected_distance(src, dst), 5);
  ReliableConfig rc;
  rc.timeout = 2.0;
  rc.backoff = 1.0;
  rc.max_attempts = 5;
  const AttemptRouter router = [](const Word& x, const Word& y, int) {
    return route_bidirectional_mp(x, y);
  };
  const ReliableReport report =
      run_reliable(sim, {Transfer{src.rank(), dst.rank()}}, router, rc);
  EXPECT_EQ(report.completed, 1u);
  EXPECT_EQ(report.abandoned, 0u);
  EXPECT_EQ(report.retransmissions, 2u)
      << "completion at t=5 must cancel the remaining attempt budget";
  EXPECT_EQ(report.duplicate_deliveries, 2u);
  EXPECT_DOUBLE_EQ(report.completion_time, 5.0);
  EXPECT_EQ(sim.stats().delivered, 3u);
}

TEST(ChaosReliable, DeliveryObserverSeesEveryCopy) {
  SimConfig config;
  config.radix = 2;
  config.k = 5;
  Simulator sim(config);
  const Word src = Word::zero(2, 5);
  const Word dst(2, {1, 1, 1, 1, 1});
  ReliableConfig rc;
  rc.timeout = 2.0;
  rc.backoff = 1.0;
  rc.max_attempts = 5;
  int copies = 0;
  double last_time = -1.0;
  rc.on_delivery = [&](const Message& m, double time) {
    ++copies;
    EXPECT_EQ(m.destination.rank(), dst.rank());
    EXPECT_GE(time, last_time);
    last_time = time;
  };
  const AttemptRouter router = [](const Word& x, const Word& y, int) {
    return route_bidirectional_mp(x, y);
  };
  run_reliable(sim, {Transfer{src.rank(), dst.rank()}}, router, rc);
  EXPECT_EQ(copies, 3) << "the observer fires on duplicates too";
}

}  // namespace
}  // namespace dbn::net

namespace dbn::testkit {
namespace {

TEST(ChaosEngine, TextFormatRoundTrips) {
  DBN_SEEDED_RNG(rng, 0xC0DE);
  for (int i = 0; i < 40; ++i) {
    const ChaosScenario s = random_scenario(rng);
    const std::string text = s.to_text();
    const ChaosScenario parsed = ChaosScenario::parse(text);
    EXPECT_EQ(parsed.d, s.d);
    EXPECT_EQ(parsed.k, s.k);
    EXPECT_EQ(parsed.seed, s.seed);
    EXPECT_EQ(parsed.transfers, s.transfers);
    EXPECT_TRUE(parsed.schedule == s.schedule);
    EXPECT_EQ(parsed.to_text(), text) << "serialization must be a fixpoint";
  }
}

TEST(ChaosEngine, ParserRejectsGarbage) {
  EXPECT_THROW(ChaosScenario::parse(""), ContractViolation);
  EXPECT_THROW(ChaosScenario::parse("net 2 3\n"), ContractViolation);
  EXPECT_THROW(ChaosScenario::parse("chaos/1\nnet 2\n"), ContractViolation);
  EXPECT_THROW(ChaosScenario::parse("chaos/1\nwobble 1 2\n"),
               ContractViolation);
}

TEST(ChaosEngine, RandomScenariosHoldEveryInvariant) {
  DBN_SEEDED_RNG(rng, 0xC405);
  for (int i = 0; i < 30; ++i) {
    const ChaosScenario s = random_scenario(rng);
    const ChaosRunResult result = run_deterministically(s);
    std::string joined;
    for (const std::string& v : result.violations) {
      joined += v + "\n";
    }
    EXPECT_TRUE(result.ok()) << joined << s.to_text();
  }
}

TEST(ChaosEngine, DegenerateCornersHoldEveryInvariant) {
  // d = 1 and k = 1 networks (single vertex / complete graph) through the
  // full chaos pipeline, including a crash/recover cycle.
  for (const auto& p : testing::degenerate_grid()) {
    SCOPED_TRACE(::testing::Message() << "d=" << p.d << " k=" << p.k);
    ChaosScenario s;
    s.d = p.d;
    s.k = p.k;
    s.seed = 5;
    const std::uint64_t n = s.vertex_count();
    s.reliable.timeout = 4.0;
    s.reliable.max_attempts = 3;
    s.reliable.backoff = 2.0;
    s.transfers.push_back({0, n - 1});
    s.transfers.push_back({n - 1, 0});
    s.schedule.site_crash(1.0, n - 1);
    s.schedule.site_recover(3.0, n - 1);
    const ChaosRunResult result = run_deterministically(s);
    std::string joined;
    for (const std::string& v : result.violations) {
      joined += v + "\n";
    }
    EXPECT_TRUE(result.ok()) << joined;
    EXPECT_EQ(result.report.completed + result.report.abandoned, 2u);
  }
}

TEST(ChaosEngine, ShrinkerReachesTheMinimalReproducer) {
  // A synthetic failure predicate that only needs one transfer and one
  // fault event: the fixpoint must strip everything else, including the
  // network size and every timing knob.
  ChaosScenario s;
  s.d = 3;
  s.k = 3;
  s.seed = 123;
  s.link_delay = 2.0;
  s.queue_capacity = 4;
  s.reliable.timeout = 16.0;
  s.reliable.max_attempts = 5;
  s.reliable.backoff = 2.0;
  s.reliable.jitter = 0.3;
  s.reliable.max_timeout = 64.0;
  for (std::uint64_t i = 0; i < 5; ++i) {
    s.transfers.push_back({i, (i * 7 + 3) % s.vertex_count()});
  }
  s.schedule.site_flap(1, 3.0, 2.0, 2.0, 3);
  s.schedule.link_crash(4.0, 2, 5);
  const ChaosFailPredicate fails = [](const ChaosScenario& c) {
    return !c.transfers.empty() && !c.schedule.empty();
  };
  const ChaosShrinkResult result = shrink_scenario(s, fails);
  EXPECT_GT(result.reductions, 0);
  EXPECT_TRUE(fails(result.scenario));
  EXPECT_EQ(result.scenario.transfers.size(), 1u);
  EXPECT_EQ(result.scenario.schedule.size(), 1u);
  EXPECT_EQ(result.scenario.d, 1u);
  EXPECT_EQ(result.scenario.k, 1u);
  EXPECT_EQ(result.scenario.reliable.max_attempts, 1);
  EXPECT_EQ(result.scenario.reliable.jitter, 0.0);
  EXPECT_EQ(result.scenario.reliable.backoff, 1.0);
  EXPECT_EQ(result.scenario.reliable.max_timeout, 0.0);
  EXPECT_EQ(result.scenario.queue_capacity, 0u);
  EXPECT_EQ(result.scenario.link_delay, 1.0);
  EXPECT_EQ(result.scenario.seed, 1u);
}

TEST(ChaosEngine, ShrinkingIsDeterministic) {
  ChaosScenario s;
  s.d = 2;
  s.k = 3;
  for (std::uint64_t i = 0; i < 4; ++i) {
    s.transfers.push_back({i, 7 - i});
  }
  s.schedule.site_flap(2, 1.0, 1.0, 1.0, 2);
  const ChaosFailPredicate fails = [](const ChaosScenario& c) {
    return c.transfers.size() >= 2;
  };
  const ChaosScenario a = shrink_scenario(s, fails).scenario;
  const ChaosScenario b = shrink_scenario(s, fails).scenario;
  EXPECT_EQ(a.to_text(), b.to_text());
  EXPECT_EQ(a.transfers.size(), 2u);
  EXPECT_TRUE(a.schedule.empty()) << "the predicate does not need faults";
}

TEST(ChaosEngine, ShrinkerRequiresAFailingScenarioOnEntry) {
  ChaosScenario s;
  EXPECT_THROW(
      shrink_scenario(s, [](const ChaosScenario&) { return false; }),
      ContractViolation);
}

TEST(ChaosEngine, FuzzLoopIsDeterministic) {
  ChaosFuzzOptions options;
  options.seed = 7;
  options.iterations = 25;
  const ChaosFuzzReport a = run_chaos_fuzz(options);
  const ChaosFuzzReport b = run_chaos_fuzz(options);
  EXPECT_EQ(a.iterations_run, 25u);
  EXPECT_EQ(a.iterations_run, b.iterations_run);
  EXPECT_EQ(a.failures.size(), b.failures.size());
  EXPECT_EQ(a.point_coverage, b.point_coverage);
  EXPECT_TRUE(a.ok());
  std::uint64_t covered = 0;
  for (const auto& [point, count] : a.point_coverage) {
    covered += count;
  }
  EXPECT_EQ(covered, a.iterations_run) << "every iteration hits one point";
}

}  // namespace
}  // namespace dbn::testkit
