#include <gtest/gtest.h>

#include <unordered_set>

#include "common/contract.hpp"
#include "common/rng.hpp"
#include "debruijn/word.hpp"
#include "testing_util.hpp"

namespace dbn {
namespace {

TEST(Word, ConstructionValidatesDigits) {
  EXPECT_NO_THROW(Word(2, {0, 1, 1}));
  EXPECT_THROW(Word(2, {0, 2, 1}), ContractViolation);
  EXPECT_THROW(Word(2, {}), ContractViolation);
  // The degenerate one-letter alphabet is a valid (single-vertex) network.
  EXPECT_NO_THROW(Word(1, {0}));
  EXPECT_THROW(Word(1, {1}), ContractViolation);
  EXPECT_THROW(Word(0, {0}), ContractViolation);
}

TEST(Word, RankRoundTrips) {
  for (std::uint32_t d : {2u, 3u, 5u}) {
    const std::size_t k = 4;
    const std::uint64_t n = Word::vertex_count(d, k);
    for (std::uint64_t r = 0; r < n; ++r) {
      const Word w = Word::from_rank(d, k, r);
      EXPECT_EQ(w.rank(), r);
      EXPECT_EQ(w.length(), k);
      EXPECT_EQ(w.radix(), d);
    }
  }
}

TEST(Word, RankIsMostSignificantFirst) {
  const Word w(10, {1, 2, 3});
  EXPECT_EQ(w.rank(), 123u);
  EXPECT_EQ(Word::from_rank(10, 3, 123), w);
  EXPECT_EQ(Word::from_rank(10, 3, 7).to_string(), "(0,0,7)");
}

TEST(Word, VertexCountChecksOverflow) {
  EXPECT_EQ(Word::vertex_count(2, 10), 1024u);
  EXPECT_EQ(Word::vertex_count(2, 63), 1ull << 63);
  EXPECT_THROW(Word::vertex_count(2, 64), ContractViolation);
  EXPECT_THROW(Word::vertex_count(10, 20), ContractViolation);
}

TEST(Word, FromRankRejectsOutOfRange) {
  EXPECT_THROW(Word::from_rank(2, 3, 8), ContractViolation);
  EXPECT_NO_THROW(Word::from_rank(2, 3, 7));
}

TEST(Word, LeftShiftMatchesPaperDefinition) {
  // X = (x1,x2,x3); X^-(a) = (x2,x3,a).
  const Word x(3, {0, 1, 2});
  EXPECT_EQ(x.left_shift(1), Word(3, {1, 2, 1}));
  EXPECT_EQ(x.left_shift(0), Word(3, {1, 2, 0}));
}

TEST(Word, RightShiftMatchesPaperDefinition) {
  // X^+(a) = (a,x1,x2).
  const Word x(3, {0, 1, 2});
  EXPECT_EQ(x.right_shift(2), Word(3, {2, 0, 1}));
}

TEST(Word, ShiftsAreMutuallyInverseOnMatchingDigits) {
  Rng rng(77);
  for (int trial = 0; trial < 100; ++trial) {
    const std::uint32_t d = 2 + trial % 4;
    const Word w = testing::random_word(rng, d, 1 + rng.below(10));
    // Undo a left shift by re-prepending the dropped head digit.
    const Digit head = w.digit(0);
    const Digit tail = w.digit(w.length() - 1);
    EXPECT_EQ(w.left_shift(0).right_shift(head), w);
    EXPECT_EQ(w.right_shift(0).left_shift(tail), w);
  }
}

TEST(Word, RankShiftArithmetic) {
  // left shift on ranks: (r*d + a) mod d^k; right shift: r/d + a*d^(k-1).
  Rng rng(88);
  const std::uint32_t d = 3;
  const std::size_t k = 5;
  const std::uint64_t n = Word::vertex_count(d, k);
  for (int trial = 0; trial < 200; ++trial) {
    const Word w = testing::random_word(rng, d, k);
    const Digit a = static_cast<Digit>(rng.below(d));
    EXPECT_EQ(w.left_shift(a).rank(), (w.rank() * d + a) % n);
    EXPECT_EQ(w.right_shift(a).rank(), w.rank() / d + a * (n / d));
  }
}

TEST(Word, ReversedIsInvolution) {
  const Word x(2, {0, 1, 1, 0, 1});
  EXPECT_EQ(x.reversed(), Word(2, {1, 0, 1, 1, 0}));
  EXPECT_EQ(x.reversed().reversed(), x);
}

TEST(Word, ToStringMatchesPaperTuples) {
  EXPECT_EQ(Word(2, {0, 1, 1}).to_string(), "(0,1,1)");
  EXPECT_EQ(Word(2, {1}).to_string(), "(1)");
}

TEST(Word, OrderingIsLexicographicViaRank) {
  const Word a(2, {0, 1, 0});
  const Word b(2, {0, 1, 1});
  EXPECT_LT(a, b);
  EXPECT_LT(a.rank(), b.rank());
}

TEST(Word, HashDistinguishesWords) {
  std::unordered_set<Word> set;
  for (std::uint64_t r = 0; r < 64; ++r) {
    set.insert(Word::from_rank(2, 6, r));
  }
  EXPECT_EQ(set.size(), 64u);
}

TEST(Word, ShiftRejectsBadDigit) {
  const Word x(2, {0, 1});
  EXPECT_THROW(x.left_shift(2), ContractViolation);
  EXPECT_THROW(x.right_shift(5), ContractViolation);
}

}  // namespace
}  // namespace dbn
