// Contract macros at level 1 (the default build): DBN_REQUIRE / DBN_ENSURE /
// DBN_ASSERT are live and throw dbn::ContractViolation; DBN_AUDIT compiles
// away. The level is pinned here so the TU tests the same configuration no
// matter what the build sets globally (sanitizer builds default to 2).
//
// The sibling TUs test_contract_release.cpp (level 0) and
// test_contract_audit.cpp (level 2) pin the other two levels, so one build
// of dbn_tests covers all three configurations.
#ifdef DBN_CONTRACT_LEVEL
#undef DBN_CONTRACT_LEVEL
#endif
#define DBN_CONTRACT_LEVEL 1

#include "common/contract.hpp"

#include <gtest/gtest.h>

#include <string>

namespace {

TEST(ContractDefaultLevel, LevelIsOne) {
  EXPECT_EQ(dbn::contract_level(), 1);
  EXPECT_EQ(DBN_AUDIT_ENABLED, 0);
}

TEST(ContractDefaultLevel, PassingChecksAreSilent) {
  EXPECT_NO_THROW(DBN_REQUIRE(1 + 1 == 2, "arithmetic"));
  EXPECT_NO_THROW(DBN_ENSURE(true, "trivially"));
  EXPECT_NO_THROW(DBN_ASSERT(2 < 3, ""));
}

TEST(ContractDefaultLevel, RequireThrowsContractViolation) {
  EXPECT_THROW(DBN_REQUIRE(false, "caller broke the rules"),
               dbn::ContractViolation);
}

TEST(ContractDefaultLevel, EnsureThrowsContractViolation) {
  EXPECT_THROW(DBN_ENSURE(false, ""), dbn::ContractViolation);
}

TEST(ContractDefaultLevel, AssertThrowsContractViolation) {
  EXPECT_THROW(DBN_ASSERT(false, ""), dbn::ContractViolation);
}

TEST(ContractDefaultLevel, MessageCarriesKindExpressionLocationAndText) {
  try {
    DBN_REQUIRE(1 == 2, "the message");
    FAIL() << "must throw";
  } catch (const dbn::ContractViolation& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("precondition"), std::string::npos) << what;
    EXPECT_NE(what.find("1 == 2"), std::string::npos) << what;
    EXPECT_NE(what.find("test_contract.cpp"), std::string::npos) << what;
    EXPECT_NE(what.find("the message"), std::string::npos) << what;
  }
}

TEST(ContractDefaultLevel, KindsAreDistinguishable) {
  try {
    DBN_ENSURE(false, "");
    FAIL();
  } catch (const dbn::ContractViolation& e) {
    EXPECT_NE(std::string(e.what()).find("postcondition"), std::string::npos);
  }
  try {
    DBN_ASSERT(false, "");
    FAIL();
  } catch (const dbn::ContractViolation& e) {
    EXPECT_NE(std::string(e.what()).find("invariant"), std::string::npos);
  }
}

TEST(ContractDefaultLevel, ConditionEvaluatedExactlyOnce) {
  int calls = 0;
  DBN_REQUIRE(++calls > 0, "side effect counts evaluations");
  EXPECT_EQ(calls, 1);
}

TEST(ContractDefaultLevel, AuditIsParsedButNotEvaluated) {
  int calls = 0;
  DBN_AUDIT(++calls > 0, "audit is off at level 1");
  EXPECT_EQ(calls, 0);
}

TEST(ContractDefaultLevel, ViolationIsALogicError) {
  // Callers may catch std::logic_error; ContractViolation must slice into it.
  EXPECT_THROW(DBN_REQUIRE(false, ""), std::logic_error);
}

}  // namespace
