#include <gtest/gtest.h>

#include "common/contract.hpp"
#include "common/rng.hpp"
#include "strings/matching.hpp"
#include "strings/naive.hpp"
#include "strings/zfunction.hpp"
#include "testing_util.hpp"

namespace dbn::strings {
namespace {

using dbn::testing::random_symbols;

std::vector<int> naive_z(SymbolView s) {
  std::vector<int> z(s.size(), 0);
  if (!s.empty()) {
    z[0] = static_cast<int>(s.size());
  }
  for (std::size_t i = 1; i < s.size(); ++i) {
    std::size_t m = 0;
    while (i + m < s.size() && s[m] == s[i + m]) {
      ++m;
    }
    z[i] = static_cast<int>(m);
  }
  return z;
}

TEST(ZFunction, KnownExamples) {
  const auto s = to_symbols("aaabaab");
  EXPECT_EQ(z_function(s), (std::vector<int>{7, 2, 1, 0, 2, 1, 0}));
  const auto t = to_symbols("abacaba");
  EXPECT_EQ(z_function(t), (std::vector<int>{7, 0, 1, 0, 3, 0, 1}));
  EXPECT_TRUE(z_function({}).empty());
}

TEST(ZFunction, MatchesNaiveOnRandomStrings) {
  Rng rng(71);
  for (int trial = 0; trial < 300; ++trial) {
    const std::uint32_t alphabet = 2 + trial % 4;
    const auto s = random_symbols(rng, rng.below(60), alphabet);
    EXPECT_EQ(z_function(s), naive_z(s)) << "trial " << trial;
  }
}

TEST(ZMatchingRow, MatchesFailureFunctionRow) {
  Rng rng(72);
  for (int trial = 0; trial < 200; ++trial) {
    const std::uint32_t alphabet = 2 + trial % 3;
    const std::size_t n = 1 + rng.below(18);
    const std::size_t m = 1 + rng.below(18);
    const auto x = random_symbols(rng, n, alphabet);
    const auto y = random_symbols(rng, m, alphabet);
    for (std::size_t i0 = 0; i0 < n; ++i0) {
      EXPECT_EQ(matching_row_l_z(x, y, i0), matching_row_l(x, y, i0))
          << "trial " << trial << " i0=" << i0;
    }
  }
}

TEST(ZMatchingRow, RejectsBadRow) {
  const auto x = to_symbols("ab");
  EXPECT_THROW(matching_row_l_z(x, x, 2), ContractViolation);
}

TEST(ZMinLCost, MatchesOtherKernels) {
  Rng rng(73);
  for (int trial = 0; trial < 250; ++trial) {
    const std::uint32_t alphabet = 2 + trial % 4;
    const std::size_t k = 1 + rng.below(20);
    const auto x = random_symbols(rng, k, alphabet);
    const auto y = random_symbols(rng, k, alphabet);
    const OverlapMin z = min_l_cost_z(x, y);
    const OverlapMin mp = min_l_cost(x, y);
    EXPECT_EQ(z.cost, mp.cost) << "trial " << trial;
    // Witness validity.
    if (z.theta > 0) {
      EXPECT_LE(z.theta,
                naive::matching_l(x, y, static_cast<std::size_t>(z.s - 1),
                                  static_cast<std::size_t>(z.t - 1)));
    }
    EXPECT_EQ(z.cost,
              2 * static_cast<int>(k) - 1 + z.s - z.t - z.theta);
  }
}

}  // namespace
}  // namespace dbn::strings
