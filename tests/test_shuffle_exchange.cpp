#include <gtest/gtest.h>

#include "common/contract.hpp"
#include "debruijn/embedding.hpp"
#include "debruijn/shuffle_exchange.hpp"
#include "testing_util.hpp"

namespace dbn {
namespace {

TEST(ShuffleExchange, MoveDefinitions) {
  const ShuffleExchangeGraph se(4);
  // 0b0110: shuffle -> 0b1100, unshuffle -> 0b0011, exchange -> 0b0111.
  EXPECT_EQ(se.shuffle(0b0110), 0b1100u);
  EXPECT_EQ(se.unshuffle(0b0110), 0b0011u);
  EXPECT_EQ(se.exchange(0b0110), 0b0111u);
  // Rotation wraps the top bit.
  EXPECT_EQ(se.shuffle(0b1000), 0b0001u);
  EXPECT_EQ(se.unshuffle(0b0001), 0b1000u);
}

TEST(ShuffleExchange, ShuffleAndUnshuffleAreInverse) {
  const ShuffleExchangeGraph se(6);
  for (std::uint64_t v = 0; v < se.vertex_count(); ++v) {
    EXPECT_EQ(se.unshuffle(se.shuffle(v)), v);
    EXPECT_EQ(se.shuffle(se.unshuffle(v)), v);
    EXPECT_EQ(se.exchange(se.exchange(v)), v);
  }
}

TEST(ShuffleExchange, DegreeAtMostThree) {
  const ShuffleExchangeGraph se(5);
  for (std::uint64_t v = 0; v < se.vertex_count(); ++v) {
    EXPECT_LE(se.neighbors(v).size(), 3u);
    EXPECT_GE(se.neighbors(v).size(), 1u);
  }
}

TEST(ShuffleExchange, DiameterIsRoughlyTwoK) {
  // Known: diam(SE(k)) = 2k - 1 for k >= 2.
  for (const std::size_t k : {2u, 3u, 4u, 5u, 6u, 7u}) {
    const ShuffleExchangeGraph se(k);
    EXPECT_EQ(se.diameter(), static_cast<int>(2 * k - 1)) << "k=" << k;
  }
}

TEST(ShuffleExchange, DeBruijnEmulatesSeMovesWithDilationAtMostTwo) {
  // The embedding module's claim, checked against this graph's own move
  // definitions: every SE edge maps to <= 2 de Bruijn hops.
  const std::size_t k = 5;
  const ShuffleExchangeGraph se(k);
  for (std::uint64_t v = 0; v < se.vertex_count(); ++v) {
    const Word w = Word::from_rank(2, k, v);
    const auto shuffled = shuffle_emulation(w);
    EXPECT_EQ(shuffled.back().rank(), se.shuffle(v));
    EXPECT_LE(shuffled.size() - 1, 1u);
    const auto exchanged = exchange_emulation(w);
    EXPECT_EQ(exchanged.back().rank(), se.exchange(v));
    EXPECT_LE(exchanged.size() - 1, 2u);
  }
}

TEST(ShuffleExchange, SeEmulatesDeBruijnMovesWithDilationAtMostTwo) {
  // Conversely: a de Bruijn left shift (w -> w<<1 | b) is shuffle followed
  // by at most one exchange in SE(k).
  const std::size_t k = 5;
  const ShuffleExchangeGraph se(k);
  const DeBruijnGraph g(2, k, Orientation::Directed);
  for (std::uint64_t v = 0; v < se.vertex_count(); ++v) {
    for (Digit b = 0; b < 2; ++b) {
      const std::uint64_t target = g.left_shift_rank(v, b);
      const std::uint64_t after_shuffle = se.shuffle(v);
      // Either the shuffle already lands on the target (rotated bit == b)
      // or one exchange fixes the last bit.
      EXPECT_TRUE(after_shuffle == target ||
                  se.exchange(after_shuffle) == target);
    }
  }
}

TEST(ShuffleExchange, RejectsBadArguments) {
  EXPECT_THROW(ShuffleExchangeGraph{0}, ContractViolation);
  const ShuffleExchangeGraph se(3);
  EXPECT_THROW(se.shuffle(8), ContractViolation);
}

}  // namespace
}  // namespace dbn
