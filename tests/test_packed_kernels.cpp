// The packed-vs-scalar differential battery (ISSUE 6 tentpole lock-in):
// every SWAR kernel in strings/packed.hpp against its scalar reference —
// the Morris–Pratt implementations in strings/failure.* and
// strings/matching.*, the suffix-tree search behind core/common_substring,
// and the brute-force oracles in strings/naive.* — over random words,
// unequal lengths, both lane widths, and the adversarial word/pair
// families of the conformance fuzzer.
#include <algorithm>
#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "common/contract.hpp"
#include "core/common_substring.hpp"
#include "strings/failure.hpp"
#include "strings/matching.hpp"
#include "strings/naive.hpp"
#include "strings/packed.hpp"
#include "testing_util.hpp"
#include "testkit/word_families.hpp"

namespace dbn {
namespace {

using strings::OverlapMin;
using strings::PackedBuf;
using strings::Symbol;

// Pack two symbol sequences at the common width, failing the test if the
// pair was expected to pack.
void pack_pair(const std::vector<Symbol>& x, const std::vector<Symbol>& y,
               PackedBuf& px, PackedBuf& py) {
  ASSERT_TRUE(strings::try_pack_pair(x, y, px, py));
}

// Checks the Theorem 2 witness contract shared by every l-side kernel:
// (s, t, theta) in range, reproducing the cost, and naming a real block.
void expect_valid_witness(const std::vector<Symbol>& x,
                          const std::vector<Symbol>& y, const OverlapMin& m) {
  const int k = static_cast<int>(x.size());
  ASSERT_GE(m.s, 1);
  ASSERT_LE(m.s, k);
  ASSERT_GE(m.t, 1);
  ASSERT_LE(m.t, k);
  ASSERT_GE(m.theta, 0);
  ASSERT_LE(m.theta, m.t);
  ASSERT_LE(m.theta, k - m.s + 1);
  EXPECT_EQ(m.cost, 2 * k - 1 + m.s - m.t - m.theta);
  for (int i = 0; i < m.theta; ++i) {
    EXPECT_EQ(x[static_cast<std::size_t>(m.s - 1 + i)],
              y[static_cast<std::size_t>(m.t - m.theta + i)])
        << "witness block mismatch at " << i;
  }
}

// Alphabets that land on both lane widths, and length caps that reach the
// lane boundary for each.
struct AlphabetParam {
  std::uint32_t alphabet;
  std::size_t max_k;
};

std::vector<AlphabetParam> alphabet_grid() {
  return {{1, 64}, {2, 64}, {3, 30}, {4, 64}, {5, 32}, {8, 30}, {16, 32}};
}

TEST(PackedKernels, WidthSelectionAndPackability) {
  EXPECT_EQ(strings::packed_width(1), 2u);
  EXPECT_EQ(strings::packed_width(4), 2u);
  EXPECT_EQ(strings::packed_width(5), 4u);
  EXPECT_EQ(strings::packed_width(16), 4u);
  EXPECT_EQ(strings::packed_width(17), 0u);
  EXPECT_TRUE(strings::packable(4, 64));
  EXPECT_FALSE(strings::packable(4, 65));
  EXPECT_TRUE(strings::packable(16, 32));
  EXPECT_FALSE(strings::packable(16, 33));
  EXPECT_FALSE(strings::packable(17, 1));
}

TEST(PackedKernels, PackUnpackRoundTrip) {
  DBN_SEEDED_RNG(rng, 0x9acc);
  for (const AlphabetParam& p : alphabet_grid()) {
    for (int trial = 0; trial < 50; ++trial) {
      const std::size_t k = 1 + rng.below(p.max_k);
      const std::vector<Symbol> s = testing::random_symbols(rng, k, p.alphabet);
      const PackedBuf packed = strings::pack_word(s, p.alphabet);
      EXPECT_EQ(strings::unpack(packed), s);
      const PackedBuf rev = strings::pack_reversed(s, p.alphabet);
      EXPECT_EQ(strings::unpack(rev), strings::reversed(s));
      // The O(log) lane reversal must agree with packing backwards.
      EXPECT_EQ(strings::reverse_cells(packed), rev);
      EXPECT_EQ(strings::reverse_cells(rev), packed);
      for (std::size_t i = 0; i < k; ++i) {
        EXPECT_EQ(packed.get(i), s[i]);
      }
    }
  }
}

TEST(PackedKernels, TryPackRejectsWhatDoesNotFit) {
  PackedBuf out;
  // Digit exceeding the cell width.
  EXPECT_FALSE(strings::try_pack(std::vector<Symbol>{0, 4, 1}, 2, out));
  EXPECT_TRUE(strings::try_pack(std::vector<Symbol>{0, 4, 1}, 4, out));
  EXPECT_FALSE(strings::try_pack(std::vector<Symbol>{16}, 4, out));
  // Unsupported widths.
  EXPECT_FALSE(strings::try_pack(std::vector<Symbol>{0}, 0, out));
  EXPECT_FALSE(strings::try_pack(std::vector<Symbol>{0}, 3, out));
  // Lane overflow.
  EXPECT_FALSE(strings::try_pack(std::vector<Symbol>(65, 0), 2, out));
  EXPECT_FALSE(strings::try_pack(std::vector<Symbol>(33, 0), 4, out));
  EXPECT_TRUE(strings::try_pack(std::vector<Symbol>(64, 3), 2, out));
  EXPECT_TRUE(strings::try_pack(std::vector<Symbol>(32, 15), 4, out));
  // Pair packing picks one common width and rejects alphabet >= 16.
  PackedBuf px, py;
  EXPECT_TRUE(strings::try_pack_pair(std::vector<Symbol>{0, 1},
                                     std::vector<Symbol>{9, 2}, px, py));
  EXPECT_EQ(px.width, 4u);
  EXPECT_EQ(py.width, 4u);
  EXPECT_FALSE(strings::try_pack_pair(std::vector<Symbol>{0, 1},
                                      std::vector<Symbol>{16}, px, py));
  // Requiring one common width is what makes the cell compares meaningful.
  EXPECT_THROW(
      strings::suffix_prefix_overlap_packed(
          strings::pack_word(std::vector<Symbol>{0, 1}, 2),
          strings::pack_word(std::vector<Symbol>{5, 1}, 16)),
      ContractViolation);
}

TEST(PackedKernels, SuffixPrefixOverlapMatchesScalar) {
  DBN_SEEDED_RNG(rng, 0x50f1);
  for (const AlphabetParam& p : alphabet_grid()) {
    for (int trial = 0; trial < 120; ++trial) {
      // Unequal lengths are legal for the overlap kernel.
      const std::size_t kx = 1 + rng.below(p.max_k);
      const std::size_t ky = 1 + rng.below(p.max_k);
      std::vector<Symbol> x = testing::random_symbols(rng, kx, p.alphabet);
      std::vector<Symbol> y = testing::random_symbols(rng, ky, p.alphabet);
      if (rng.chance(0.5)) {
        // Plant an overlap so the interesting region is actually hit.
        const std::size_t s = 1 + rng.below(std::min(kx, ky));
        std::copy(x.end() - static_cast<long>(s), x.end(), y.begin());
      }
      PackedBuf px, py;
      pack_pair(x, y, px, py);
      const int expected = strings::suffix_prefix_overlap(x, y);
      EXPECT_EQ(strings::suffix_prefix_overlap_packed(px, py), expected);
      EXPECT_EQ(strings::naive::suffix_prefix_overlap(x, y), expected);
    }
  }
}

TEST(PackedKernels, MinLCostMatchesScalarWithValidWitness) {
  DBN_SEEDED_RNG(rng, 0x313c);
  for (const AlphabetParam& p : alphabet_grid()) {
    for (int trial = 0; trial < 120; ++trial) {
      const std::size_t k = 1 + rng.below(p.max_k);
      const std::vector<Symbol> x = testing::random_symbols(rng, k, p.alphabet);
      const std::vector<Symbol> y = testing::random_symbols(rng, k, p.alphabet);
      PackedBuf px, py;
      pack_pair(x, y, px, py);
      const OverlapMin packed = strings::min_l_cost_packed(px, py);
      EXPECT_EQ(packed.cost, strings::min_l_cost(x, y).cost);
      expect_valid_witness(x, y, packed);
    }
  }
}

TEST(PackedKernels, BoundedSweepIsExactBelowTheBound) {
  // The engine prunes the r-side sweep with the l-side incumbent; the
  // contract is that min(bound, result) always equals min(bound, true
  // minimum), with a valid witness either way.
  DBN_SEEDED_RNG(rng, 0xb0b0);
  for (int trial = 0; trial < 400; ++trial) {
    const std::uint32_t alphabet = trial % 2 == 0 ? 2 : 5 + rng.below(12);
    const std::size_t k = 1 + rng.below(alphabet <= 4 ? 64 : 32);
    const std::vector<Symbol> x = testing::random_symbols(rng, k, alphabet);
    const std::vector<Symbol> y = testing::random_symbols(rng, k, alphabet);
    PackedBuf px, py;
    pack_pair(x, y, px, py);
    const int truth = strings::min_l_cost(x, y).cost;
    EXPECT_EQ(strings::min_l_cost_packed_bounded(px, py,
                                                 strings::kNoSweepBound)
                  .cost,
              truth);
    for (const int bound : {0, 1, truth, truth + 1, static_cast<int>(k)}) {
      const OverlapMin m = strings::min_l_cost_packed_bounded(px, py, bound);
      expect_valid_witness(x, y, m);
      EXPECT_GE(m.cost, truth) << "bound=" << bound;
      EXPECT_EQ(std::min(bound, m.cost), std::min(bound, truth))
          << "bound=" << bound;
      if (truth < bound) {
        EXPECT_EQ(m.cost, truth) << "bound=" << bound;
      }
    }
  }
}

TEST(PackedKernels, MinLCostOnAdversarialPairFamilies) {
  DBN_SEEDED_RNG(rng, 0xadfa);
  for (const std::uint32_t d : {2u, 3u, 4u, 8u, 16u}) {
    const std::size_t k = d <= 4 ? 31 : 29;
    for (const testkit::WordFamily wf : testkit::kAllWordFamilies) {
      for (const testkit::PairFamily pf : testkit::kAllPairFamilies) {
        SCOPED_TRACE(::testing::Message()
                     << "d=" << d << " " << testkit::family_name(wf) << "/"
                     << testkit::family_name(pf));
        for (int trial = 0; trial < 4; ++trial) {
          const auto [xw, yw] = testkit::sample_pair(rng, d, k, wf, pf);
          const std::vector<Symbol> x(xw.symbols().begin(),
                                      xw.symbols().end());
          const std::vector<Symbol> y(yw.symbols().begin(),
                                      yw.symbols().end());
          PackedBuf px, py;
          pack_pair(x, y, px, py);
          const OverlapMin packed = strings::min_l_cost_packed(px, py);
          EXPECT_EQ(packed.cost, strings::min_l_cost(x, y).cost);
          EXPECT_EQ(packed.cost, min_l_cost_suffix_tree(x, y).cost);
          expect_valid_witness(x, y, packed);
        }
      }
    }
  }
}

TEST(PackedKernels, MinLCostPinnedCorners) {
  // k = 1: equal words cost 0, distinct cost 1.
  PackedBuf a, b;
  pack_pair(std::vector<Symbol>{1}, std::vector<Symbol>{1}, a, b);
  EXPECT_EQ(strings::min_l_cost_packed(a, b).cost, 0);
  pack_pair(std::vector<Symbol>{0}, std::vector<Symbol>{1}, a, b);
  EXPECT_EQ(strings::min_l_cost_packed(a, b).cost, 1);
  // X == Y: distance 0 with the full-word witness.
  DBN_SEEDED_RNG(rng, 0xc02e);
  const std::vector<Symbol> w = testing::random_symbols(rng, 20, 4);
  pack_pair(w, w, a, b);
  const OverlapMin self = strings::min_l_cost_packed(a, b);
  EXPECT_EQ(self.cost, 0);
  EXPECT_EQ(self.theta, 20);
  // No shared symbol at all: the theta = 0 baseline k.
  const std::vector<Symbol> zeros(16, 0);
  const std::vector<Symbol> ones(16, 1);
  pack_pair(zeros, ones, a, b);
  const OverlapMin far = strings::min_l_cost_packed(a, b);
  EXPECT_EQ(far.cost, 16);
  EXPECT_EQ(far.theta, 0);
  // Mismatched sizes violate the contract.
  pack_pair(zeros, ones, a, b);
  b.size = 15;
  EXPECT_THROW(strings::min_l_cost_packed(a, b), ContractViolation);
}

TEST(PackedKernels, LongestCommonSubstringMatchesNaiveAndSuffixTree) {
  DBN_SEEDED_RNG(rng, 0x1c5b);
  for (const AlphabetParam& p : alphabet_grid()) {
    for (int trial = 0; trial < 80; ++trial) {
      const std::size_t ka = 1 + rng.below(p.max_k);
      const std::size_t kb = 1 + rng.below(p.max_k);
      std::vector<Symbol> a = testing::random_symbols(rng, ka, p.alphabet);
      std::vector<Symbol> b = testing::random_symbols(rng, kb, p.alphabet);
      if (rng.chance(0.5)) {
        // Plant a shared block at random offsets.
        const std::size_t len = 1 + rng.below(std::min(ka, kb));
        const std::size_t ia = rng.below(ka - len + 1);
        const std::size_t ib = rng.below(kb - len + 1);
        std::copy(a.begin() + static_cast<long>(ia),
                  a.begin() + static_cast<long>(ia + len),
                  b.begin() + static_cast<long>(ib));
      }
      PackedBuf pa, pb;
      pack_pair(a, b, pa, pb);
      const int expected = strings::naive::longest_common_substring(a, b);
      EXPECT_EQ(strings::longest_common_substring_packed(pa, pb), expected);
      EXPECT_EQ(longest_common_substring_suffix_tree(a, b), expected);
      // The packed-first front must agree regardless of which kernel ran.
      EXPECT_EQ(longest_common_substring(a, b), expected);
    }
  }
}

TEST(PackedKernels, LongestCommonSubstringFrontFallsBackUnpacked) {
  // Symbols above the packable alphabet force the suffix-tree path of the
  // front; the answer must not depend on the dispatch.
  const std::vector<Symbol> a{100, 200, 300, 400, 500};
  const std::vector<Symbol> b{900, 300, 400, 500, 100};
  EXPECT_EQ(longest_common_substring(a, b), 3);
  EXPECT_EQ(strings::naive::longest_common_substring(a, b), 3);
}

TEST(PackedKernels, BorderArrayMatchesScalar) {
  DBN_SEEDED_RNG(rng, 0xb02d);
  std::vector<int> packed_border;
  for (const AlphabetParam& p : alphabet_grid()) {
    for (int trial = 0; trial < 60; ++trial) {
      const std::size_t k = 1 + rng.below(p.max_k);
      const std::vector<Symbol> s = testing::random_symbols(rng, k, p.alphabet);
      const PackedBuf packed = strings::pack_word(s, p.alphabet);
      strings::border_array_packed(packed, packed_border);
      EXPECT_EQ(packed_border, strings::border_array(s));
      if (k <= 24) {
        EXPECT_EQ(packed_border, strings::naive::border_array(s));
      }
    }
  }
  // Border-rich adversarial patterns (periodic, self-overlapping).
  for (const std::vector<Symbol>& s : std::vector<std::vector<Symbol>>{
           {0, 0, 0, 0, 0, 0, 0},
           {0, 1, 0, 1, 0, 1, 0},
           {0, 1, 0, 0, 1, 0, 0, 1, 0},
           {0, 0, 1, 0, 0, 1, 0, 0},
           {3, 3, 3, 3, 3, 3, 3, 3, 3, 3, 3, 3, 3, 3, 3, 3}}) {
    const PackedBuf packed = strings::pack_word(s, 4);
    strings::border_array_packed(packed, packed_border);
    EXPECT_EQ(packed_border, strings::border_array(s));
    EXPECT_EQ(packed_border, strings::naive::border_array(s));
  }
}

TEST(PackedKernels, FindAllMatchesKmpAndNaive) {
  DBN_SEEDED_RNG(rng, 0xf1d4);
  std::vector<std::size_t> hits;
  for (const AlphabetParam& p : alphabet_grid()) {
    for (int trial = 0; trial < 80; ++trial) {
      const std::size_t n = 1 + rng.below(p.max_k);
      const std::size_t m = 1 + rng.below(n);
      const std::vector<Symbol> text =
          testing::random_symbols(rng, n, p.alphabet);
      std::vector<Symbol> pattern;
      if (rng.chance(0.6)) {
        // A real window of the text: guaranteed occurrences.
        const std::size_t at = rng.below(n - m + 1);
        pattern.assign(text.begin() + static_cast<long>(at),
                       text.begin() + static_cast<long>(at + m));
      } else {
        pattern = testing::random_symbols(rng, m, p.alphabet);
      }
      PackedBuf ptext, ppattern;
      pack_pair(text, pattern, ptext, ppattern);
      strings::find_all_packed(ptext, ppattern, hits);
      const std::vector<std::size_t> expected =
          strings::kmp_find_all(text, pattern);
      EXPECT_EQ(hits, expected);
      EXPECT_EQ(strings::naive::find_all(text, pattern), expected);
    }
  }
  // Degenerate shapes: empty pattern matches everywhere, longer-than-text
  // pattern nowhere.
  const std::vector<Symbol> text{0, 1, 0};
  PackedBuf ptext, pempty, plong;
  ASSERT_TRUE(strings::try_pack(text, 2, ptext));
  ASSERT_TRUE(strings::try_pack(std::vector<Symbol>{}, 2, pempty));
  ASSERT_TRUE(strings::try_pack(std::vector<Symbol>{0, 1, 0, 1}, 2, plong));
  strings::find_all_packed(ptext, pempty, hits);
  EXPECT_EQ(hits, (std::vector<std::size_t>{0, 1, 2, 3}));
  strings::find_all_packed(ptext, plong, hits);
  EXPECT_TRUE(hits.empty());
}

TEST(PackedKernels, DispatchersUsePackedAndScalarConsistently) {
  // The public entry points (failure.cpp) dispatch on try_pack_pair; the
  // answers across the packable boundary must be seamless. Alphabet 16
  // packs, alphabet 17 does not — same structure either side.
  DBN_SEEDED_RNG(rng, 0xd15b);
  for (const std::uint32_t alphabet : {16u, 17u}) {
    for (int trial = 0; trial < 40; ++trial) {
      const std::size_t k = 1 + rng.below(30);
      std::vector<Symbol> x = testing::random_symbols(rng, k, alphabet);
      std::vector<Symbol> y = x;
      const std::size_t shift = rng.below(k);
      std::rotate(y.begin(), y.begin() + static_cast<long>(shift), y.end());
      EXPECT_EQ(strings::suffix_prefix_overlap(x, y),
                strings::naive::suffix_prefix_overlap(x, y));
      EXPECT_EQ(strings::kmp_find_all(x, y), strings::naive::find_all(x, y));
      EXPECT_EQ(longest_common_substring(x, y),
                strings::naive::longest_common_substring(x, y));
    }
  }
}

}  // namespace
}  // namespace dbn
