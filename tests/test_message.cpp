#include <gtest/gtest.h>

#include "common/contract.hpp"
#include "common/rng.hpp"
#include "core/routers.hpp"
#include "net/message.hpp"
#include "testing_util.hpp"

namespace dbn::net {
namespace {

Message sample_message() {
  const Word src(2, {0, 1, 1});
  const Word dst(2, {1, 0, 0});
  return Message(ControlCode::Data, src, dst,
                 route_bidirectional_mp(src, dst, WildcardMode::Wildcards),
                 {0xde, 0xad, 0xbe, 0xef});
}

TEST(Message, ConstructionValidatesFields) {
  const Word a(2, {0, 1});
  const Word b(3, {0, 1});
  EXPECT_THROW(Message(ControlCode::Data, a, b, RoutingPath{}),
               ContractViolation);
  RoutingPath bad({{ShiftType::Left, 7}});
  EXPECT_THROW(Message(ControlCode::Data, a, a, bad), ContractViolation);
  RoutingPath wildcard({{ShiftType::Left, kWildcard}});
  EXPECT_NO_THROW(Message(ControlCode::Data, a, a, wildcard));
}

TEST(Message, EncodeDecodeRoundTrip) {
  const Message msg = sample_message();
  const auto wire = encode(msg);
  const auto back = decode(wire);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(*back, msg);
}

TEST(Message, RoundTripPreservesWildcards) {
  const Word src(3, {0, 1, 2});
  const Word dst(3, {2, 2, 0});
  Message msg(ControlCode::Probe, src, dst,
              route_bidirectional_suffix_tree(src, dst, WildcardMode::Wildcards));
  const auto back = decode(encode(msg));
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->path, msg.path);
  EXPECT_EQ(back->control, ControlCode::Probe);
}

TEST(Message, RoundTripEmptyPathAndPayload) {
  const Word w(2, {1, 1});
  const Message msg(ControlCode::Ack, w, w, RoutingPath{});
  const auto back = decode(encode(msg));
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(*back, msg);
}

TEST(Message, DecodeRejectsTruncation) {
  const auto wire = encode(sample_message());
  for (std::size_t cut = 0; cut < wire.size(); ++cut) {
    std::vector<std::uint8_t> truncated(wire.begin(),
                                        wire.begin() + static_cast<long>(cut));
    EXPECT_FALSE(decode(truncated).has_value()) << "cut at " << cut;
  }
}

TEST(Message, DecodeRejectsTrailingGarbage) {
  auto wire = encode(sample_message());
  wire.push_back(0x00);
  EXPECT_FALSE(decode(wire).has_value());
}

TEST(Message, DecodeRejectsCorruptedFields) {
  // Corrupt the control byte.
  auto wire = encode(sample_message());
  wire[0] = 0x77;
  EXPECT_FALSE(decode(wire).has_value());
  // Corrupt the radix (offset 1..4) to 1.
  wire = encode(sample_message());
  wire[1] = 1;
  wire[2] = wire[3] = wire[4] = 0;
  EXPECT_FALSE(decode(wire).has_value());
  // Corrupt a source digit to be >= radix (digits start at offset 9).
  wire = encode(sample_message());
  wire[9] = 9;
  EXPECT_FALSE(decode(wire).has_value());
}

TEST(Message, DecodeRejectsOutOfRangeHopDigit) {
  const Word w(2, {0, 1});
  Message msg(ControlCode::Data, w, w, RoutingPath{{{ShiftType::Left, 1}}});
  auto wire = encode(msg);
  // Hop digit is the last 4 bytes before the payload length; payload empty.
  // Layout: ... hopcount(4) type(1) digit(4) payloadlen(4).
  const std::size_t digit_offset = wire.size() - 8;
  wire[digit_offset] = 5;
  EXPECT_FALSE(decode(wire).has_value());
}

TEST(Message, FuzzDecoderNeverCrashes) {
  Rng rng(9090);
  for (int trial = 0; trial < 3000; ++trial) {
    std::vector<std::uint8_t> junk(rng.below(64));
    for (auto& b : junk) {
      b = static_cast<std::uint8_t>(rng.below(256));
    }
    (void)decode(junk);  // must not throw or crash
  }
  // Mutated valid messages must also never crash the decoder.
  const auto wire = encode(sample_message());
  for (int trial = 0; trial < 3000; ++trial) {
    auto mutated = wire;
    mutated[rng.below(mutated.size())] ^=
        static_cast<std::uint8_t>(1 + rng.below(255));
    const auto result = decode(mutated);
    if (result.has_value()) {
      // If it decodes, the fields must be internally consistent.
      EXPECT_EQ(result->source.length(), result->destination.length());
    }
  }
}

}  // namespace
}  // namespace dbn::net
