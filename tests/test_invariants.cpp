// Structural/metric invariants of the distance functions, checked on
// random words far beyond the sizes where BFS validation is possible.
#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>

#include "common/rng.hpp"
#include "core/distance.hpp"
#include "testing_util.hpp"

namespace dbn {
namespace {

Word permuted_digits(const Word& w, const std::vector<Digit>& pi) {
  std::vector<Digit> digits(w.length());
  for (std::size_t i = 0; i < w.length(); ++i) {
    digits[i] = pi[w.digit(i)];
  }
  return Word(w.radix(), std::move(digits));
}

TEST(Invariants, TriangleInequalityOnRandomTriples) {
  Rng rng(501);
  for (int trial = 0; trial < 400; ++trial) {
    const std::uint32_t d = 2 + trial % 3;
    const std::size_t k = 1 + rng.below(20);
    const Word x = testing::random_word(rng, d, k);
    const Word y = testing::random_word(rng, d, k);
    const Word z = testing::random_word(rng, d, k);
    EXPECT_LE(undirected_distance(x, z),
              undirected_distance(x, y) + undirected_distance(y, z));
    EXPECT_LE(directed_distance(x, z),
              directed_distance(x, y) + directed_distance(y, z));
  }
}

TEST(Invariants, BellmanConditionOnRandomPairs) {
  // D(X,Y) <= 1 + min over neighbors Z of X of D(Z,Y), with equality when
  // D(X,Y) > 0 — exactly what makes greedy hop-by-hop routing exact.
  Rng rng(502);
  for (int trial = 0; trial < 150; ++trial) {
    const std::uint32_t d = 2 + trial % 2;
    const std::size_t k = 2 + rng.below(12);
    const Word x = testing::random_word(rng, d, k);
    const Word y = testing::random_word(rng, d, k);
    if (x == y) {
      continue;
    }
    const int here = undirected_distance(x, y);
    int best = here + 2;
    for (Digit a = 0; a < d; ++a) {
      best = std::min(best, undirected_distance(x.left_shift(a), y));
      best = std::min(best, undirected_distance(x.right_shift(a), y));
    }
    EXPECT_EQ(here, best + 1) << "X=" << x.to_string() << " Y=" << y.to_string();
  }
}

TEST(Invariants, ReversalIsAnAutomorphismOfTheUndirectedGraph) {
  // Word reversal swaps left and right shifts, so it preserves undirected
  // adjacency and hence distances: D(X,Y) = D(reverse(X), reverse(Y)).
  Rng rng(503);
  for (int trial = 0; trial < 300; ++trial) {
    const std::uint32_t d = 2 + trial % 4;
    const std::size_t k = 1 + rng.below(24);
    const Word x = testing::random_word(rng, d, k);
    const Word y = testing::random_word(rng, d, k);
    EXPECT_EQ(undirected_distance(x, y),
              undirected_distance(x.reversed(), y.reversed()));
  }
}

TEST(Invariants, ReversalIsAnAntiAutomorphismOfTheDirectedGraph) {
  // Reversal maps the arc X -> X^-(a) to reverse(X)^+(a) -> reverse(X),
  // i.e. it reverses arcs: D(X,Y) = D(reverse(Y), reverse(X)).
  Rng rng(504);
  for (int trial = 0; trial < 300; ++trial) {
    const std::uint32_t d = 2 + trial % 4;
    const std::size_t k = 1 + rng.below(24);
    const Word x = testing::random_word(rng, d, k);
    const Word y = testing::random_word(rng, d, k);
    EXPECT_EQ(directed_distance(x, y),
              directed_distance(y.reversed(), x.reversed()));
  }
}

TEST(Invariants, DigitPermutationIsAnAutomorphism) {
  // Relabeling the alphabet commutes with both shift operations.
  Rng rng(505);
  for (int trial = 0; trial < 300; ++trial) {
    const std::uint32_t d = 2 + trial % 4;
    const std::size_t k = 1 + rng.below(20);
    std::vector<Digit> pi(d);
    std::iota(pi.begin(), pi.end(), 0);
    for (std::size_t i = d; i-- > 1;) {
      std::swap(pi[i], pi[rng.below(i + 1)]);
    }
    const Word x = testing::random_word(rng, d, k);
    const Word y = testing::random_word(rng, d, k);
    EXPECT_EQ(undirected_distance(x, y),
              undirected_distance(permuted_digits(x, pi),
                                  permuted_digits(y, pi)));
    EXPECT_EQ(directed_distance(x, y),
              directed_distance(permuted_digits(x, pi),
                                permuted_digits(y, pi)));
  }
}

TEST(Invariants, DistanceBounds) {
  Rng rng(506);
  for (int trial = 0; trial < 300; ++trial) {
    const std::uint32_t d = 2 + trial % 4;
    const std::size_t k = 1 + rng.below(30);
    const Word x = testing::random_word(rng, d, k);
    const Word y = testing::random_word(rng, d, k);
    const int ud = undirected_distance(x, y);
    const int dd = directed_distance(x, y);
    EXPECT_GE(ud, 0);
    EXPECT_LE(ud, static_cast<int>(k));
    EXPECT_LE(ud, dd);
    EXPECT_LE(dd, static_cast<int>(k));
  }
}

TEST(Invariants, UndirectedDistanceSometimesBeatsBothDirectedDirections) {
  // Mixing L and R moves can beat the best single-direction route; verify
  // the phenomenon exists (it is why Theorem 2 is not just Property 1
  // twice).
  // From 00000 to 10001 a mixed path R,R,L reaches in 3 moves (prepend 1,
  // prepend anything, append 1), but any single-direction route must
  // rebuild the whole word: both directed distances are 5.
  const Word x(2, {0, 0, 0, 0, 0});
  const Word y(2, {1, 0, 0, 0, 1});
  const int ud = undirected_distance(x, y);
  const int forward = directed_distance(x, y);
  const int backward = directed_distance(y, x);
  EXPECT_EQ(ud, 3);
  EXPECT_EQ(forward, 5);
  EXPECT_EQ(backward, 5);
  EXPECT_LT(ud, std::min(forward, backward));
}

}  // namespace
}  // namespace dbn
