#include <gtest/gtest.h>

#include "common/contract.hpp"
#include "core/routing_table.hpp"
#include "debruijn/bfs.hpp"
#include "testing_util.hpp"

namespace dbn {
namespace {

TEST(RoutingTable, WalksAreExactAllPairsUndirected) {
  const DeBruijnGraph g(2, 5, Orientation::Undirected);
  const RoutingTable table(g);
  for (std::uint64_t src = 0; src < g.vertex_count(); ++src) {
    const auto dist = bfs_distances(g, src);
    for (std::uint64_t dst = 0; dst < g.vertex_count(); ++dst) {
      EXPECT_EQ(table.walk_length(src, dst), dist[dst])
          << "src=" << src << " dst=" << dst;
    }
  }
}

TEST(RoutingTable, WalksAreExactAllPairsDirected) {
  const DeBruijnGraph g(3, 3, Orientation::Directed);
  const RoutingTable table(g);
  for (std::uint64_t src = 0; src < g.vertex_count(); ++src) {
    const auto dist = bfs_distances(g, src);
    for (std::uint64_t dst = 0; dst < g.vertex_count(); ++dst) {
      EXPECT_EQ(table.walk_length(src, dst), dist[dst])
          << "src=" << src << " dst=" << dst;
    }
  }
}

TEST(RoutingTable, NextHopsAreRealEdges) {
  const DeBruijnGraph g(2, 4, Orientation::Undirected);
  const RoutingTable table(g);
  for (std::uint64_t src = 0; src < g.vertex_count(); ++src) {
    for (std::uint64_t dst = 0; dst < g.vertex_count(); ++dst) {
      if (src == dst) {
        continue;
      }
      const Hop hop = table.next_hop(src, dst);
      const Word w = g.word(src);
      const Word next = hop.type == ShiftType::Left
                            ? w.left_shift(hop.digit)
                            : w.right_shift(hop.digit);
      EXPECT_TRUE(g.has_edge(src, next.rank()));
    }
  }
}

TEST(RoutingTable, MemoryIsQuadratic) {
  const DeBruijnGraph g(2, 5, Orientation::Undirected);
  const RoutingTable table(g);
  EXPECT_EQ(table.memory_bytes(), 32u * 32u * sizeof(std::uint32_t));
  EXPECT_EQ(table.vertex_count(), 32u);
}

TEST(RoutingTable, RejectsBadUsage) {
  const DeBruijnGraph big(2, 14, Orientation::Undirected);
  EXPECT_THROW(RoutingTable{big}, ContractViolation);
  const DeBruijnGraph g(2, 3, Orientation::Undirected);
  const RoutingTable table(g);
  EXPECT_THROW(table.next_hop(0, 0), ContractViolation);
  EXPECT_THROW(table.next_hop(0, 8), ContractViolation);
}

}  // namespace
}  // namespace dbn
