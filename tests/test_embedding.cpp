#include <gtest/gtest.h>

#include <set>

#include "common/rng.hpp"
#include "debruijn/embedding.hpp"
#include "testing_util.hpp"

namespace dbn {
namespace {

TEST(Embedding, RingHasDilationOne) {
  for (const auto& [d, k] : std::vector<std::pair<std::uint32_t, std::size_t>>{
           {2, 4}, {3, 3}, {4, 2}}) {
    const auto ring = ring_embedding(d, k);
    const DeBruijnGraph g(d, k, Orientation::Undirected);
    ASSERT_EQ(ring.size(), g.vertex_count());
    for (std::size_t i = 0; i < ring.size(); ++i) {
      EXPECT_TRUE(g.has_edge(ring[i], ring[(i + 1) % ring.size()]));
    }
  }
}

TEST(Embedding, LinearArrayHasDilationOne) {
  const auto line = linear_array_embedding(2, 5);
  const DeBruijnGraph g(2, 5, Orientation::Undirected);
  ASSERT_EQ(line.size(), g.vertex_count());
  const std::set<std::uint64_t> distinct(line.begin(), line.end());
  EXPECT_EQ(distinct.size(), line.size());
  for (std::size_t i = 0; i + 1 < line.size(); ++i) {
    EXPECT_TRUE(g.has_edge(line[i], line[i + 1]));
  }
}

TEST(Embedding, CompleteBinaryTreeEdgesAreLeftShifts) {
  for (std::size_t k : {2u, 3u, 5u, 8u}) {
    const auto node = complete_binary_tree_embedding(k);
    const DeBruijnGraph g(2, k, Orientation::Directed);
    ASSERT_EQ(node.size(), g.vertex_count());
    std::set<std::uint64_t> used;
    for (std::uint64_t i = 1; i < node.size(); ++i) {
      EXPECT_TRUE(used.insert(node[i]).second) << "collision at heap " << i;
      if (2 * i < node.size()) {
        EXPECT_TRUE(g.has_edge(node[i], node[2 * i]))
            << "left child edge broken at " << i;
        EXPECT_TRUE(g.has_edge(node[i], node[2 * i + 1]))
            << "right child edge broken at " << i;
      }
    }
    // The all-zero vertex is never used (heap indices start at 1).
    EXPECT_FALSE(used.contains(0));
  }
}

TEST(Embedding, ShuffleEmulationIsOneHop) {
  Rng rng(33);
  const DeBruijnGraph g(2, 6, Orientation::Undirected);
  for (int trial = 0; trial < 100; ++trial) {
    const Word w = testing::random_word(rng, 2, 6);
    const auto hop = shuffle_emulation(w);
    ASSERT_EQ(hop.size(), 2u);
    EXPECT_EQ(hop[0], w);
    // sigma(w) is the left rotation of w.
    Word expected = w;
    expected.left_shift_inplace(w.digit(0));
    EXPECT_EQ(hop[1], expected);
    if (hop[1] != w) {
      EXPECT_TRUE(g.has_edge(w.rank(), hop[1].rank()));
    }
  }
}

TEST(Embedding, ExchangeEmulationFlipsLastBitInTwoHops) {
  Rng rng(44);
  const DeBruijnGraph g(2, 6, Orientation::Undirected);
  for (int trial = 0; trial < 100; ++trial) {
    const Word w = testing::random_word(rng, 2, 6);
    const auto path = exchange_emulation(w);
    ASSERT_EQ(path.size(), 3u);
    EXPECT_EQ(path[0], w);
    // Endpoint has the last bit flipped, everything else equal.
    for (std::size_t i = 0; i + 1 < w.length(); ++i) {
      EXPECT_EQ(path[2].digit(i), w.digit(i));
    }
    EXPECT_EQ(path[2].digit(w.length() - 1), 1 - w.digit(w.length() - 1));
    for (std::size_t i = 0; i + 1 < path.size(); ++i) {
      if (path[i] != path[i + 1]) {
        EXPECT_TRUE(g.has_edge(path[i].rank(), path[i + 1].rank()));
      }
    }
  }
}

TEST(Embedding, EmulationsRequireBinaryWords) {
  const Word w(3, {0, 1, 2});
  EXPECT_THROW(shuffle_emulation(w), ContractViolation);
  EXPECT_THROW(exchange_emulation(w), ContractViolation);
}

}  // namespace
}  // namespace dbn
