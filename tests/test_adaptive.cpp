#include <gtest/gtest.h>

#include "common/contract.hpp"
#include "core/distance.hpp"
#include "net/adaptive.hpp"
#include "net/fault.hpp"
#include "testing_util.hpp"

namespace dbn::net {
namespace {

TEST(Adaptive, FaultFreeWalksAreExact) {
  const DeBruijnGraph g(2, 5, Orientation::Undirected);
  const std::vector<bool> none(g.vertex_count(), false);
  Rng rng(21);
  for (int trial = 0; trial < 200; ++trial) {
    const std::uint64_t xr = rng.below(g.vertex_count());
    const std::uint64_t yr = rng.below(g.vertex_count());
    const Word x = g.word(xr);
    const Word y = g.word(yr);
    const AdaptiveResult r = adaptive_route(g, none, x, y, rng);
    EXPECT_TRUE(r.delivered);
    EXPECT_EQ(r.hops, undirected_distance(x, y));
  }
}

TEST(Adaptive, HighDeliveryUnderFewFaults) {
  const DeBruijnGraph g(2, 6, Orientation::Undirected);
  Rng rng(22);
  int delivered = 0, total = 0;
  for (int trial = 0; trial < 40; ++trial) {
    const auto failed = random_fault_set(g, 1, rng);  // f = d-1
    for (int probe = 0; probe < 10; ++probe) {
      const std::uint64_t xr = rng.below(g.vertex_count());
      const std::uint64_t yr = rng.below(g.vertex_count());
      if (failed[xr] || failed[yr]) {
        continue;
      }
      AdaptiveConfig config;
      config.jitter = 0.1;
      const AdaptiveResult r =
          adaptive_route(g, failed, g.word(xr), g.word(yr), rng, config);
      ++total;
      delivered += r.delivered;
      if (r.delivered) {
        EXPECT_GE(r.hops, undirected_distance(g.word(xr), g.word(yr)));
      }
    }
  }
  ASSERT_GT(total, 200);
  // Local knowledge only: not guaranteed, but should succeed almost always.
  EXPECT_GT(static_cast<double>(delivered) / total, 0.95)
      << delivered << "/" << total;
}

TEST(Adaptive, StuckWhenEveryUsefulNeighborIsDead) {
  const DeBruijnGraph g(2, 4, Orientation::Undirected);
  const Word corner = Word::zero(2, 4);
  std::vector<bool> failed(g.vertex_count(), false);
  for (const std::uint64_t v : g.neighbors(corner.rank())) {
    failed[v] = true;
  }
  Rng rng(23);
  const AdaptiveResult r =
      adaptive_route(g, failed, corner, Word(2, {1, 1, 1, 1}), rng);
  EXPECT_FALSE(r.delivered);
}

TEST(Adaptive, TtlBoundsTheWalk) {
  const DeBruijnGraph g(2, 5, Orientation::Undirected);
  const std::vector<bool> none(g.vertex_count(), false);
  Rng rng(24);
  AdaptiveConfig config;
  config.ttl = 2;
  const Word x = Word::zero(2, 5);
  const Word y(2, {1, 1, 1, 1, 1});  // distance 5 > ttl
  const AdaptiveResult r = adaptive_route(g, none, x, y, rng, config);
  EXPECT_FALSE(r.delivered);
  EXPECT_LE(r.hops, 2);
}

TEST(Adaptive, DegenerateNetworksDeliverExactly) {
  // d = 1 (single vertex) and k = 1 (complete graph K_d): the greedy walk
  // must stay exact where the closed-form analyses degenerate.
  Rng rng(31);
  for (const auto& p : testing::degenerate_grid()) {
    const DeBruijnGraph g(p.d, p.k, Orientation::Undirected);
    const std::vector<bool> none(g.vertex_count(), false);
    for (int trial = 0; trial < 20; ++trial) {
      const Word x = g.word(rng.below(g.vertex_count()));
      const Word y = g.word(rng.below(g.vertex_count()));
      const AdaptiveResult r = adaptive_route(g, none, x, y, rng);
      EXPECT_TRUE(r.delivered) << p;
      EXPECT_EQ(r.hops, undirected_distance(x, y)) << p;
    }
  }
}

TEST(Adaptive, DefaultTtlHasAFloorOfEightAtK1) {
  // jitter = 1.0 forces a sideways move whenever one exists; in K_5 every
  // non-destination neighbor is sideways, so the walk spends its whole TTL.
  // The old default of 4k hops collapsed to 4 at k = 1; the floor is 8.
  const DeBruijnGraph g(5, 1, Orientation::Undirected);
  const std::vector<bool> none(g.vertex_count(), false);
  Rng rng(32);
  AdaptiveConfig config;
  config.jitter = 1.0;
  const AdaptiveResult r =
      adaptive_route(g, none, g.word(0), g.word(1), rng, config);
  EXPECT_FALSE(r.delivered);
  EXPECT_EQ(r.hops, 8) << "default ttl must be max(4k, 8)";
  EXPECT_EQ(r.sideways_moves, 8);
}

TEST(Adaptive, DegenerateK1RoutesAroundMaximalFaults) {
  // In K_d any two survivors stay adjacent, whatever else is dead.
  for (const std::uint32_t d : {2u, 5u, 11u}) {
    const DeBruijnGraph g(d, 1, Orientation::Undirected);
    std::vector<bool> failed(g.vertex_count(), false);
    for (std::uint64_t v = 1; v + 1 < g.vertex_count(); ++v) {
      failed[v] = true;
    }
    Rng rng(33);
    const AdaptiveResult r =
        adaptive_route(g, failed, g.word(0), g.word(d - 1), rng);
    EXPECT_TRUE(r.delivered) << "d=" << d;
    EXPECT_EQ(r.hops, 1) << "d=" << d;
  }
}

TEST(Adaptive, DeflectionDominatesGreedyGiveUp) {
  // Same seed, same walk — until greedy gives up. The deflecting walk
  // extends it, so it can only deliver more, and any extra delivery must
  // both use a backward move and be sanctioned by the BFS oracle.
  const DeBruijnGraph g(2, 6, Orientation::Undirected);
  Rng rng(34);
  int recovered = 0;
  for (int trial = 0; trial < 40; ++trial) {
    const auto failed = random_fault_set(g, 7, rng);
    const FaultAwareRouter oracle(g, failed);
    for (int probe = 0; probe < 10; ++probe) {
      const std::uint64_t xr = rng.below(g.vertex_count());
      const std::uint64_t yr = rng.below(g.vertex_count());
      if (failed[xr] || failed[yr]) {
        continue;
      }
      const std::uint64_t seed = rng();
      AdaptiveConfig greedy_only;
      greedy_only.deflect = false;
      Rng ra(seed);
      Rng rb(seed);
      const AdaptiveResult greedy = adaptive_route(
          g, failed, g.word(xr), g.word(yr), ra, greedy_only);
      const AdaptiveResult deflecting =
          adaptive_route(g, failed, g.word(xr), g.word(yr), rb);
      EXPECT_TRUE(!greedy.delivered || deflecting.delivered)
          << "deflection must never lose a delivery greedy makes";
      if (greedy.delivered) {
        EXPECT_EQ(deflecting.hops, greedy.hops);
        EXPECT_EQ(deflecting.deflections, 0);
      }
      if (deflecting.delivered && !greedy.delivered) {
        ++recovered;
        EXPECT_GT(deflecting.deflections, 0);
        EXPECT_TRUE(oracle.route(g.word(xr), g.word(yr)).has_value())
            << "a live walk reached y, so a surviving path exists";
      }
    }
  }
  EXPECT_GT(recovered, 0)
      << "7 faults in DN(2,6) must strand greedy somewhere deflection saves";
}

TEST(Adaptive, LayerTableScoringIsDecisionIdentical) {
  // The layer-table rewrite must not change a single decision: walks under
  // both scorings from the same RNG state are bit-identical — same
  // outcome, same move mix, and the same number of draws consumed (checked
  // by comparing the next draw of both streams afterwards). Fault-free and
  // single-fault scenarios, with jitter so the sideways draw is exercised.
  const DeBruijnGraph g(2, 6, Orientation::Undirected);
  LayerTable layers(g);
  DBN_SEEDED_RNG(rng, 72);
  for (const int faults : {0, 1}) {
    for (int trial = 0; trial < 150; ++trial) {
      const auto failed = random_fault_set(g, faults, rng);
      const std::uint64_t xr = rng.below(g.vertex_count());
      const std::uint64_t yr = rng.below(g.vertex_count());
      if (failed[xr] || failed[yr]) {
        continue;
      }
      const std::uint64_t seed = rng();
      AdaptiveConfig rescore;
      rescore.jitter = 0.25;
      AdaptiveConfig tabled = rescore;
      tabled.layers = &layers;
      Rng ra(seed);
      Rng rb(seed);
      const AdaptiveResult a =
          adaptive_route(g, failed, g.word(xr), g.word(yr), ra, rescore);
      const AdaptiveResult b =
          adaptive_route(g, failed, g.word(xr), g.word(yr), rb, tabled);
      ASSERT_EQ(a.delivered, b.delivered) << "x=" << xr << " y=" << yr;
      ASSERT_EQ(a.hops, b.hops);
      ASSERT_EQ(a.sideways_moves, b.sideways_moves);
      ASSERT_EQ(a.deflections, b.deflections);
      ASSERT_EQ(ra(), rb()) << "scorings consumed different draw counts";
    }
  }
}

TEST(Adaptive, LayerTableScoringIsIdenticalOnDegenerateNetworks) {
  // The d = 1 and k = 1 corners again, this time as a scoring-equivalence
  // property (the layer table's byte layout degenerates differently in
  // each: single-vertex tables vs diameter-1 complete graphs).
  DBN_SEEDED_RNG(rng, 73);
  for (const auto& p : testing::degenerate_grid()) {
    const DeBruijnGraph g(p.d, p.k, Orientation::Undirected);
    LayerTable layers(g);
    const std::vector<bool> none(g.vertex_count(), false);
    for (int trial = 0; trial < 20; ++trial) {
      const std::uint64_t xr = rng.below(g.vertex_count());
      const std::uint64_t yr = rng.below(g.vertex_count());
      const std::uint64_t seed = rng();
      AdaptiveConfig rescore;
      rescore.jitter = 0.5;
      AdaptiveConfig tabled = rescore;
      tabled.layers = &layers;
      Rng ra(seed);
      Rng rb(seed);
      const AdaptiveResult a =
          adaptive_route(g, none, g.word(xr), g.word(yr), ra, rescore);
      const AdaptiveResult b =
          adaptive_route(g, none, g.word(xr), g.word(yr), rb, tabled);
      ASSERT_EQ(a.delivered, b.delivered) << p;
      ASSERT_EQ(a.hops, b.hops) << p;
      ASSERT_EQ(a.sideways_moves, b.sideways_moves) << p;
      ASSERT_EQ(a.deflections, b.deflections) << p;
      ASSERT_EQ(ra(), rb()) << p;
    }
  }
}

TEST(Adaptive, RejectsMismatchedLayerTable) {
  const DeBruijnGraph g(2, 4, Orientation::Undirected);
  const DeBruijnGraph other(2, 5, Orientation::Undirected);
  LayerTable layers(other);
  const std::vector<bool> none(g.vertex_count(), false);
  Rng rng(26);
  AdaptiveConfig config;
  config.layers = &layers;
  EXPECT_THROW(adaptive_route(g, none, Word::zero(2, 4),
                              Word(2, {1, 0, 0, 1}), rng, config),
               ContractViolation);
}

TEST(Adaptive, RejectsBadUsage) {
  const DeBruijnGraph und(2, 4, Orientation::Undirected);
  const DeBruijnGraph dir(2, 4, Orientation::Directed);
  std::vector<bool> failed(und.vertex_count(), false);
  Rng rng(25);
  const Word a = Word::zero(2, 4);
  const Word b(2, {1, 0, 0, 1});
  EXPECT_THROW(adaptive_route(dir, failed, a, b, rng), ContractViolation);
  failed[0] = true;
  EXPECT_THROW(adaptive_route(und, failed, a, b, rng), ContractViolation);
  EXPECT_THROW(
      adaptive_route(und, std::vector<bool>(3, false), a, b, rng),
      ContractViolation);
}

}  // namespace
}  // namespace dbn::net
