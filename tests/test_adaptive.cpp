#include <gtest/gtest.h>

#include "common/contract.hpp"
#include "core/distance.hpp"
#include "net/adaptive.hpp"
#include "net/fault.hpp"
#include "testing_util.hpp"

namespace dbn::net {
namespace {

TEST(Adaptive, FaultFreeWalksAreExact) {
  const DeBruijnGraph g(2, 5, Orientation::Undirected);
  const std::vector<bool> none(g.vertex_count(), false);
  Rng rng(21);
  for (int trial = 0; trial < 200; ++trial) {
    const std::uint64_t xr = rng.below(g.vertex_count());
    const std::uint64_t yr = rng.below(g.vertex_count());
    const Word x = g.word(xr);
    const Word y = g.word(yr);
    const AdaptiveResult r = adaptive_route(g, none, x, y, rng);
    EXPECT_TRUE(r.delivered);
    EXPECT_EQ(r.hops, undirected_distance(x, y));
  }
}

TEST(Adaptive, HighDeliveryUnderFewFaults) {
  const DeBruijnGraph g(2, 6, Orientation::Undirected);
  Rng rng(22);
  int delivered = 0, total = 0;
  for (int trial = 0; trial < 40; ++trial) {
    const auto failed = random_fault_set(g, 1, rng);  // f = d-1
    for (int probe = 0; probe < 10; ++probe) {
      const std::uint64_t xr = rng.below(g.vertex_count());
      const std::uint64_t yr = rng.below(g.vertex_count());
      if (failed[xr] || failed[yr]) {
        continue;
      }
      AdaptiveConfig config;
      config.jitter = 0.1;
      const AdaptiveResult r =
          adaptive_route(g, failed, g.word(xr), g.word(yr), rng, config);
      ++total;
      delivered += r.delivered;
      if (r.delivered) {
        EXPECT_GE(r.hops, undirected_distance(g.word(xr), g.word(yr)));
      }
    }
  }
  ASSERT_GT(total, 200);
  // Local knowledge only: not guaranteed, but should succeed almost always.
  EXPECT_GT(static_cast<double>(delivered) / total, 0.95)
      << delivered << "/" << total;
}

TEST(Adaptive, StuckWhenEveryUsefulNeighborIsDead) {
  const DeBruijnGraph g(2, 4, Orientation::Undirected);
  const Word corner = Word::zero(2, 4);
  std::vector<bool> failed(g.vertex_count(), false);
  for (const std::uint64_t v : g.neighbors(corner.rank())) {
    failed[v] = true;
  }
  Rng rng(23);
  const AdaptiveResult r =
      adaptive_route(g, failed, corner, Word(2, {1, 1, 1, 1}), rng);
  EXPECT_FALSE(r.delivered);
}

TEST(Adaptive, TtlBoundsTheWalk) {
  const DeBruijnGraph g(2, 5, Orientation::Undirected);
  const std::vector<bool> none(g.vertex_count(), false);
  Rng rng(24);
  AdaptiveConfig config;
  config.ttl = 2;
  const Word x = Word::zero(2, 5);
  const Word y(2, {1, 1, 1, 1, 1});  // distance 5 > ttl
  const AdaptiveResult r = adaptive_route(g, none, x, y, rng, config);
  EXPECT_FALSE(r.delivered);
  EXPECT_LE(r.hops, 2);
}

TEST(Adaptive, RejectsBadUsage) {
  const DeBruijnGraph und(2, 4, Orientation::Undirected);
  const DeBruijnGraph dir(2, 4, Orientation::Directed);
  std::vector<bool> failed(und.vertex_count(), false);
  Rng rng(25);
  const Word a = Word::zero(2, 4);
  const Word b(2, {1, 0, 0, 1});
  EXPECT_THROW(adaptive_route(dir, failed, a, b, rng), ContractViolation);
  failed[0] = true;
  EXPECT_THROW(adaptive_route(und, failed, a, b, rng), ContractViolation);
  EXPECT_THROW(
      adaptive_route(und, std::vector<bool>(3, false), a, b, rng),
      ContractViolation);
}

}  // namespace
}  // namespace dbn::net
