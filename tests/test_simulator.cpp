#include <gtest/gtest.h>

#include "common/contract.hpp"
#include "common/rng.hpp"
#include "core/distance.hpp"
#include "core/routers.hpp"
#include "net/simulator.hpp"
#include "net/traffic.hpp"
#include "testing_util.hpp"

namespace dbn::net {
namespace {

Message data_message(const Word& src, const Word& dst,
                     WildcardMode mode = WildcardMode::Concrete) {
  return Message(ControlCode::Data, src, dst,
                 route_bidirectional_mp(src, dst, mode));
}

TEST(Simulator, DeliversSingleMessageWithExactLatency) {
  SimConfig config;
  config.radix = 2;
  config.k = 4;
  Simulator sim(config);
  const Word src = Word::from_rank(2, 4, 3);
  const Word dst = Word::from_rank(2, 4, 12);
  const int dist = undirected_distance(src, dst);
  sim.inject(0.0, data_message(src, dst));
  sim.run();
  EXPECT_EQ(sim.stats().injected, 1u);
  EXPECT_EQ(sim.stats().delivered, 1u);
  EXPECT_EQ(sim.stats().misdelivered, 0u);
  // Uncongested: latency = hops * link_delay.
  EXPECT_DOUBLE_EQ(sim.stats().mean_latency(), static_cast<double>(dist));
  EXPECT_EQ(sim.stats().total_hops, static_cast<std::uint64_t>(dist));
}

TEST(Simulator, SelfMessageDeliversWithZeroLatency) {
  SimConfig config;
  Simulator sim(config);
  const Word w = Word::from_rank(2, 4, 7);
  sim.inject(1.5, data_message(w, w));
  sim.run();
  EXPECT_EQ(sim.stats().delivered, 1u);
  EXPECT_DOUBLE_EQ(sim.stats().mean_latency(), 0.0);
}

TEST(Simulator, AllMessagesDeliveredUnderUniformTraffic) {
  SimConfig config;
  config.radix = 2;
  config.k = 5;
  config.wildcard_policy = WildcardPolicy::Random;
  Simulator sim(config);
  Rng rng(555);
  const auto schedule = uniform_traffic(2, 5, 0.05, 100.0, rng);
  ASSERT_GT(schedule.size(), 50u);
  for (const Injection& inj : schedule) {
    const Word src = Word::from_rank(2, 5, inj.source);
    const Word dst = Word::from_rank(2, 5, inj.destination);
    sim.inject(inj.time, data_message(src, dst, WildcardMode::Wildcards));
  }
  sim.run();
  EXPECT_EQ(sim.stats().injected, schedule.size());
  EXPECT_EQ(sim.stats().delivered, schedule.size());
  EXPECT_EQ(sim.stats().misdelivered, 0u);
  EXPECT_EQ(sim.stats().dropped_fault, 0u);
  EXPECT_EQ(sim.stats().dropped_overflow, 0u);
  // Congestion can only add latency over the hop count.
  EXPECT_GE(sim.stats().mean_latency(), sim.stats().mean_hops());
}

TEST(Simulator, FifoLinkSerializesContendingMessages) {
  // Two messages injected simultaneously on the same first link: the second
  // waits one link_delay behind the first.
  SimConfig config;
  config.radix = 2;
  config.k = 3;
  Simulator sim(config);
  const Word src(2, {0, 0, 0});
  const Word dst(2, {0, 0, 1});  // one left shift away
  sim.inject(0.0, data_message(src, dst));
  sim.inject(0.0, data_message(src, dst));
  sim.run();
  EXPECT_EQ(sim.stats().delivered, 2u);
  EXPECT_DOUBLE_EQ(sim.stats().max_latency, 2.0);
  EXPECT_DOUBLE_EQ(sim.stats().total_latency, 3.0);  // 1 + 2
  EXPECT_EQ(sim.stats().max_queue, 2u);
}

TEST(Simulator, QueueCapacityDropsOverflow) {
  SimConfig config;
  config.radix = 2;
  config.k = 3;
  config.link_queue_capacity = 2;
  Simulator sim(config);
  const Word src(2, {0, 0, 0});
  const Word dst(2, {0, 0, 1});
  for (int i = 0; i < 5; ++i) {
    sim.inject(0.0, data_message(src, dst));
  }
  sim.run();
  EXPECT_EQ(sim.stats().delivered, 2u);
  EXPECT_EQ(sim.stats().dropped_overflow, 3u);
}

TEST(Simulator, FailedNodeDropsTraffic) {
  SimConfig config;
  config.radix = 2;
  config.k = 4;
  Simulator sim(config);
  const Word src = Word::from_rank(2, 4, 1);
  const Word dst = Word::from_rank(2, 4, 9);
  const RoutingPath path = route_bidirectional_mp(src, dst);
  // Fail the first intermediate site on the route.
  Word first_hop = src;
  const Hop& h = path.hop(0);
  first_hop = h.type == ShiftType::Left ? first_hop.left_shift(h.digit)
                                        : first_hop.right_shift(h.digit);
  sim.fail_node(first_hop.rank());
  EXPECT_TRUE(sim.is_failed(first_hop.rank()));
  sim.inject(0.0, Message(ControlCode::Data, src, dst, path));
  sim.run();
  EXPECT_EQ(sim.stats().delivered, 0u);
  EXPECT_EQ(sim.stats().dropped_fault, 1u);
}

TEST(Simulator, MisdeliveryDetected) {
  // A deliberately wrong path (too short) ends at a non-destination site.
  SimConfig config;
  config.radix = 2;
  config.k = 3;
  Simulator sim(config);
  const Word src(2, {0, 0, 0});
  const Word dst(2, {1, 1, 1});
  RoutingPath wrong({{ShiftType::Left, 1}});
  sim.inject(0.0, Message(ControlCode::Data, src, dst, wrong));
  sim.run();
  EXPECT_EQ(sim.stats().delivered, 0u);
  EXPECT_EQ(sim.stats().misdelivered, 1u);
}

TEST(Simulator, WildcardPoliciesAllDeliver) {
  for (WildcardPolicy policy :
       {WildcardPolicy::Zero, WildcardPolicy::Random, WildcardPolicy::LeastQueue}) {
    SimConfig config;
    config.radix = 2;
    config.k = 5;
    config.wildcard_policy = policy;
    Simulator sim(config);
    Rng rng(777);
    for (int i = 0; i < 64; ++i) {
      const Word src = testing::random_word(rng, 2, 5);
      const Word dst = testing::random_word(rng, 2, 5);
      sim.inject(static_cast<double>(i) * 0.25,
                 data_message(src, dst, WildcardMode::Wildcards));
    }
    sim.run();
    EXPECT_EQ(sim.stats().delivered, 64u)
        << "policy " << static_cast<int>(policy);
    EXPECT_EQ(sim.stats().misdelivered, 0u);
  }
}

TEST(Simulator, DeterministicAcrossRunsWithSameSeed) {
  auto run_once = [] {
    SimConfig config;
    config.radix = 2;
    config.k = 5;
    config.wildcard_policy = WildcardPolicy::Random;
    config.seed = 424242;
    Simulator sim(config);
    Rng rng(31337);
    const auto schedule = uniform_traffic(2, 5, 0.1, 40.0, rng);
    for (const Injection& inj : schedule) {
      const Word src = Word::from_rank(2, 5, inj.source);
      const Word dst = Word::from_rank(2, 5, inj.destination);
      sim.inject(inj.time, data_message(src, dst, WildcardMode::Wildcards));
    }
    sim.run();
    return sim.stats();
  };
  const SimStats a = run_once();
  const SimStats b = run_once();
  EXPECT_EQ(a.delivered, b.delivered);
  EXPECT_DOUBLE_EQ(a.total_latency, b.total_latency);
  EXPECT_EQ(a.max_queue, b.max_queue);
  EXPECT_EQ(a.latencies, b.latencies);
}

TEST(Simulator, RunUntilStopsTheClock) {
  SimConfig config;
  config.radix = 2;
  config.k = 4;
  Simulator sim(config);
  const Word src = Word::from_rank(2, 4, 0);
  const Word dst = Word::from_rank(2, 4, 15);  // distance 4
  sim.inject(0.0, data_message(src, dst));
  sim.run(2.0);
  EXPECT_EQ(sim.stats().delivered, 0u);  // still in flight
  sim.run();
  EXPECT_EQ(sim.stats().delivered, 1u);
}

TEST(Simulator, LatencyPercentilesOrdered) {
  SimConfig config;
  config.radix = 2;
  config.k = 5;
  Simulator sim(config);
  Rng rng(99);
  for (int i = 0; i < 200; ++i) {
    const Word src = testing::random_word(rng, 2, 5);
    const Word dst = testing::random_word(rng, 2, 5);
    sim.inject(0.1 * i, data_message(src, dst));
  }
  sim.run();
  const SimStats& s = sim.stats();
  EXPECT_LE(s.latency_percentile(50), s.latency_percentile(95));
  EXPECT_LE(s.latency_percentile(95), s.latency_percentile(100));
  EXPECT_DOUBLE_EQ(s.latency_percentile(100), s.max_latency);
  EXPECT_THROW(s.latency_percentile(101), ContractViolation);
}

TEST(Simulator, RejectsBadConfigAndUsage) {
  SimConfig config;
  config.link_delay = 0.0;
  EXPECT_THROW(Simulator{config}, ContractViolation);
  config.link_delay = 1.0;
  config.radix = 2;
  config.k = 30;  // 2^30 > 2^26 cap
  EXPECT_THROW(Simulator{config}, ContractViolation);
  config.k = 3;
  Simulator sim(config);
  const Word wrong(3, {0, 1, 2});
  EXPECT_THROW(sim.inject(0.0, data_message(wrong, wrong)), ContractViolation);
  EXPECT_THROW(sim.fail_node(8), ContractViolation);
}

}  // namespace
}  // namespace dbn::net
