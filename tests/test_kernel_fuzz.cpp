// Heavy cross-kernel fuzzing: all five Theorem 2 engines (plus the naive
// enumeration where affordable) against each other on structured,
// adversarial and randomized word families. Any divergence means one of
// the five independently derived algorithms is wrong.
#include <gtest/gtest.h>

#include <algorithm>

#include "common/rng.hpp"
#include "core/common_substring.hpp"
#include "debruijn/sequence.hpp"
#include "strings/matching.hpp"
#include "strings/naive.hpp"
#include "strings/suffix_automaton.hpp"
#include "strings/suffix_array.hpp"
#include "strings/zfunction.hpp"
#include "testing_util.hpp"

namespace dbn {
namespace {

using strings::OverlapMin;
using strings::Symbol;

void expect_all_kernels_agree(const std::vector<Symbol>& x,
                              const std::vector<Symbol>& y,
                              const char* family) {
  const int expected = strings::min_l_cost(x, y).cost;
  EXPECT_EQ(strings::min_l_cost_z(x, y).cost, expected) << family;
  EXPECT_EQ(min_l_cost_suffix_tree(x, y).cost, expected) << family;
  EXPECT_EQ(strings::min_l_cost_suffix_automaton(x, y).cost, expected)
      << family;
  EXPECT_EQ(strings::min_l_cost_suffix_array(x, y).cost, expected) << family;
  if (x.size() <= 16) {
    EXPECT_EQ(strings::naive::min_l_cost(x, y).cost, expected) << family;
  }
}

std::vector<Symbol> periodic(std::size_t k, const std::vector<Symbol>& motif) {
  std::vector<Symbol> out(k);
  for (std::size_t i = 0; i < k; ++i) {
    out[i] = motif[i % motif.size()];
  }
  return out;
}

TEST(KernelFuzz, ConstantAndPeriodicWords) {
  for (const std::size_t k : {1u, 2u, 3u, 7u, 16u, 33u}) {
    expect_all_kernels_agree(periodic(k, {0}), periodic(k, {0}), "0^k vs 0^k");
    expect_all_kernels_agree(periodic(k, {0}), periodic(k, {1}), "0^k vs 1^k");
    expect_all_kernels_agree(periodic(k, {0, 1}), periodic(k, {1, 0}),
                             "(01)* vs (10)*");
    expect_all_kernels_agree(periodic(k, {0, 0, 1}), periodic(k, {0, 1}),
                             "(001)* vs (01)*");
  }
}

TEST(KernelFuzz, ReversalAndShiftPairs) {
  Rng rng(777);
  for (int trial = 0; trial < 150; ++trial) {
    const std::uint32_t d = 2 + trial % 3;
    const std::size_t k = 1 + rng.below(28);
    const Word w = testing::random_word(rng, d, k);
    const std::vector<Symbol> x(w.symbols().begin(), w.symbols().end());
    // Against its own reversal.
    std::vector<Symbol> rev(x.rbegin(), x.rend());
    expect_all_kernels_agree(x, rev, "word vs reversal");
    // Against a small rotation (adjacent vertices in the graph).
    std::vector<Symbol> rot = x;
    std::rotate(rot.begin(), rot.begin() + 1, rot.end());
    expect_all_kernels_agree(x, rot, "word vs rotation");
    // Against itself.
    expect_all_kernels_agree(x, x, "word vs itself");
  }
}

TEST(KernelFuzz, DeBruijnSequenceWindows) {
  // Windows of a de Bruijn sequence share long overlaps — the structured
  // regime the routing actually sees.
  const auto seq = de_bruijn_sequence(2, 8);
  const std::size_t k = 12;
  Rng rng(778);
  for (int trial = 0; trial < 120; ++trial) {
    const std::size_t i = rng.below(seq.size() - k);
    const std::size_t j = rng.below(seq.size() - k);
    const std::vector<Symbol> x(seq.begin() + static_cast<long>(i),
                                seq.begin() + static_cast<long>(i + k));
    const std::vector<Symbol> y(seq.begin() + static_cast<long>(j),
                                seq.begin() + static_cast<long>(j + k));
    expect_all_kernels_agree(x, y, "de Bruijn windows");
  }
}

TEST(KernelFuzz, LargeAlphabets) {
  Rng rng(779);
  for (int trial = 0; trial < 80; ++trial) {
    const std::size_t k = 1 + rng.below(20);
    std::vector<Symbol> x(k), y(k);
    for (std::size_t i = 0; i < k; ++i) {
      // Huge sparse alphabet: stresses sentinel handling and map-based
      // children in every suffix structure.
      x[i] = static_cast<Symbol>(rng.below(1u << 20));
      y[i] = rng.chance(0.3) ? x[i] : static_cast<Symbol>(rng.below(1u << 20));
    }
    expect_all_kernels_agree(x, y, "large alphabet");
  }
}

TEST(KernelFuzz, LowEntropyBiasedWords) {
  Rng rng(780);
  for (int trial = 0; trial < 150; ++trial) {
    const std::size_t k = 1 + rng.below(40);
    std::vector<Symbol> x(k), y(k);
    for (std::size_t i = 0; i < k; ++i) {
      x[i] = rng.chance(0.9) ? 0 : 1;  // long runs of zeros
      y[i] = rng.chance(0.9) ? 0 : 1;
    }
    expect_all_kernels_agree(x, y, "low entropy");
  }
}

}  // namespace
}  // namespace dbn
