// Heavy cross-kernel fuzzing: all six Theorem 2 engines (plus the naive
// enumeration where affordable) against each other on structured,
// adversarial and randomized word families. Any divergence means one of
// the six independently derived algorithms is wrong.
#include <gtest/gtest.h>

#include <algorithm>

#include "common/rng.hpp"
#include "core/common_substring.hpp"
#include "debruijn/sequence.hpp"
#include "strings/failure.hpp"
#include "strings/matching.hpp"
#include "strings/naive.hpp"
#include "strings/packed.hpp"
#include "strings/suffix_automaton.hpp"
#include "strings/suffix_array.hpp"
#include "strings/zfunction.hpp"
#include "testing_util.hpp"

namespace dbn {
namespace {

using strings::OverlapMin;
using strings::Symbol;

void expect_all_kernels_agree(const std::vector<Symbol>& x,
                              const std::vector<Symbol>& y,
                              const char* family) {
  const int expected = strings::min_l_cost(x, y).cost;
  EXPECT_EQ(strings::min_l_cost_z(x, y).cost, expected) << family;
  EXPECT_EQ(min_l_cost_suffix_tree(x, y).cost, expected) << family;
  EXPECT_EQ(strings::min_l_cost_suffix_automaton(x, y).cost, expected)
      << family;
  EXPECT_EQ(strings::min_l_cost_suffix_array(x, y).cost, expected) << family;
  strings::PackedBuf px, py;
  if (strings::try_pack_pair(x, y, px, py)) {
    // The SWAR offset sweep joins the panel whenever the pair fits a lane.
    EXPECT_EQ(strings::min_l_cost_packed(px, py).cost, expected) << family;
  }
  if (x.size() <= 16) {
    EXPECT_EQ(strings::naive::min_l_cost(x, y).cost, expected) << family;
  }
}

std::vector<Symbol> periodic(std::size_t k, const std::vector<Symbol>& motif) {
  std::vector<Symbol> out(k);
  for (std::size_t i = 0; i < k; ++i) {
    out[i] = motif[i % motif.size()];
  }
  return out;
}

TEST(KernelFuzz, ConstantAndPeriodicWords) {
  for (const std::size_t k : {1u, 2u, 3u, 7u, 16u, 33u}) {
    expect_all_kernels_agree(periodic(k, {0}), periodic(k, {0}), "0^k vs 0^k");
    expect_all_kernels_agree(periodic(k, {0}), periodic(k, {1}), "0^k vs 1^k");
    expect_all_kernels_agree(periodic(k, {0, 1}), periodic(k, {1, 0}),
                             "(01)* vs (10)*");
    expect_all_kernels_agree(periodic(k, {0, 0, 1}), periodic(k, {0, 1}),
                             "(001)* vs (01)*");
  }
}

TEST(KernelFuzz, ReversalAndShiftPairs) {
  Rng rng(777);
  for (int trial = 0; trial < 150; ++trial) {
    const std::uint32_t d = 2 + trial % 3;
    const std::size_t k = 1 + rng.below(28);
    const Word w = testing::random_word(rng, d, k);
    const std::vector<Symbol> x(w.symbols().begin(), w.symbols().end());
    // Against its own reversal.
    std::vector<Symbol> rev(x.rbegin(), x.rend());
    expect_all_kernels_agree(x, rev, "word vs reversal");
    // Against a small rotation (adjacent vertices in the graph).
    std::vector<Symbol> rot = x;
    std::rotate(rot.begin(), rot.begin() + 1, rot.end());
    expect_all_kernels_agree(x, rot, "word vs rotation");
    // Against itself.
    expect_all_kernels_agree(x, x, "word vs itself");
  }
}

TEST(KernelFuzz, DeBruijnSequenceWindows) {
  // Windows of a de Bruijn sequence share long overlaps — the structured
  // regime the routing actually sees.
  const auto seq = de_bruijn_sequence(2, 8);
  const std::size_t k = 12;
  Rng rng(778);
  for (int trial = 0; trial < 120; ++trial) {
    const std::size_t i = rng.below(seq.size() - k);
    const std::size_t j = rng.below(seq.size() - k);
    const std::vector<Symbol> x(seq.begin() + static_cast<long>(i),
                                seq.begin() + static_cast<long>(i + k));
    const std::vector<Symbol> y(seq.begin() + static_cast<long>(j),
                                seq.begin() + static_cast<long>(j + k));
    expect_all_kernels_agree(x, y, "de Bruijn windows");
  }
}

TEST(KernelFuzz, LargeAlphabets) {
  Rng rng(779);
  for (int trial = 0; trial < 80; ++trial) {
    const std::size_t k = 1 + rng.below(20);
    std::vector<Symbol> x(k), y(k);
    for (std::size_t i = 0; i < k; ++i) {
      // Huge sparse alphabet: stresses sentinel handling and map-based
      // children in every suffix structure.
      x[i] = static_cast<Symbol>(rng.below(1u << 20));
      y[i] = rng.chance(0.3) ? x[i] : static_cast<Symbol>(rng.below(1u << 20));
    }
    expect_all_kernels_agree(x, y, "large alphabet");
  }
}

TEST(KernelFuzz, LowEntropyBiasedWords) {
  Rng rng(780);
  for (int trial = 0; trial < 150; ++trial) {
    const std::size_t k = 1 + rng.below(40);
    std::vector<Symbol> x(k), y(k);
    for (std::size_t i = 0; i < k; ++i) {
      x[i] = rng.chance(0.9) ? 0 : 1;  // long runs of zeros
      y[i] = rng.chance(0.9) ? 0 : 1;
    }
    expect_all_kernels_agree(x, y, "low entropy");
  }
}

// --- packed (SWAR) kernel differential fuzzing ----------------------------
//
// The packed kernels are pure bit manipulation — exactly the kind of code
// where an off-by-one in a shift or mask survives unit tests and dies on
// one word shape. These sweeps hammer them against the scalar references
// at volume (the side-minimum sweep above already covers min_l_cost).

TEST(KernelFuzz, PackedOverlapAndSearchKernels) {
  DBN_SEEDED_RNG(rng, 0x9afca11);
  std::vector<std::size_t> hits;
  for (int trial = 0; trial < 20000; ++trial) {
    // Alphabet mix: mostly small (both lane widths), occasionally at or
    // past the packable edge so the dispatchers' fallback is fuzzed too.
    const std::uint32_t alphabet =
        trial % 7 == 0 ? 16 + rng.below(4) : 1 + rng.below(16);
    const std::uint32_t width = strings::packed_width(alphabet);
    const std::size_t max_k = width == 0 ? 40 : 128 / width;
    const std::size_t kx = 1 + rng.below(max_k);
    const std::size_t ky = 1 + rng.below(max_k);
    std::vector<Symbol> x = testing::random_symbols(rng, kx, alphabet);
    std::vector<Symbol> y = testing::random_symbols(rng, ky, alphabet);
    if (rng.chance(0.4)) {
      // Plant a suffix-prefix overlap (the Property 1 hot case).
      const std::size_t s = 1 + rng.below(std::min(kx, ky));
      std::copy(x.end() - static_cast<long>(s), x.end(), y.begin());
    }
    // Public dispatchers (packed fast path when the pair fits a lane,
    // Morris–Pratt otherwise) against the brute-force oracles.
    EXPECT_EQ(strings::suffix_prefix_overlap(x, y),
              strings::naive::suffix_prefix_overlap(x, y));
    EXPECT_EQ(strings::kmp_find_all(x, y), strings::naive::find_all(x, y));
    strings::PackedBuf px, py;
    if (strings::try_pack_pair(x, y, px, py)) {
      EXPECT_EQ(strings::suffix_prefix_overlap_packed(px, py),
                strings::naive::suffix_prefix_overlap(x, y));
      strings::find_all_packed(px, py, hits);
      EXPECT_EQ(hits, strings::naive::find_all(x, y));
      EXPECT_EQ(strings::unpack(strings::reverse_cells(px)),
                strings::reversed(x));
      EXPECT_EQ(strings::longest_common_substring_packed(px, py),
                longest_common_substring_suffix_tree(x, y));
    }
  }
}

TEST(KernelFuzz, PackedBorderArrays) {
  DBN_SEEDED_RNG(rng, 0xb0fca11);
  std::vector<int> packed_border;
  for (int trial = 0; trial < 20000; ++trial) {
    const std::uint32_t alphabet = 1 + rng.below(16);
    const std::uint32_t width = strings::packed_width(alphabet);
    const std::size_t k = 1 + rng.below(128 / width);
    // Low-entropy draws keep the words border-rich.
    std::vector<Symbol> s(k);
    for (auto& c : s) {
      c = rng.chance(0.7) ? 0 : static_cast<Symbol>(rng.below(alphabet));
    }
    const strings::PackedBuf packed = strings::pack_word(s, alphabet);
    strings::border_array_packed(packed, packed_border);
    EXPECT_EQ(packed_border, strings::border_array(s));
  }
}

TEST(KernelFuzz, PackedSideMinimumAtLaneBoundaries) {
  // Dense sweep exactly at the lane-capacity edges (k = 64 at width 2,
  // k = 32 at width 4) where a mask off-by-one would hide.
  DBN_SEEDED_RNG(rng, 0xede0);
  for (int trial = 0; trial < 4000; ++trial) {
    const bool wide = rng.chance(0.5);
    const std::uint32_t alphabet = wide ? 5 + rng.below(12) : 2 + rng.below(3);
    const std::size_t k = wide ? 29 + rng.below(4) : 61 + rng.below(4);
    const std::vector<Symbol> x = testing::random_symbols(rng, k, alphabet);
    std::vector<Symbol> y = x;
    const std::size_t rot = rng.below(k);
    std::rotate(y.begin(), y.begin() + static_cast<long>(rot), y.end());
    if (rng.chance(0.5)) {
      y[rng.below(k)] = static_cast<Symbol>(rng.below(alphabet));
    }
    strings::PackedBuf px, py;
    ASSERT_TRUE(strings::try_pack_pair(x, y, px, py));
    EXPECT_EQ(strings::min_l_cost_packed(px, py).cost,
              strings::min_l_cost(x, y).cost);
  }
}

}  // namespace
}  // namespace dbn
