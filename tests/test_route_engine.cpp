#include <gtest/gtest.h>

#include "common/contract.hpp"
#include "common/rng.hpp"
#include "core/distance.hpp"
#include "core/route_engine.hpp"
#include "core/routers.hpp"
#include "testing_util.hpp"

namespace dbn {
namespace {

TEST(RouteEngine, MatchesAllocatingRouterOnRandomPairs) {
  BidirectionalRouteEngine engine(64);
  Rng rng(9001);
  RoutingPath path;
  for (int trial = 0; trial < 500; ++trial) {
    const std::uint32_t d = 2 + trial % 4;
    const std::size_t k = 1 + rng.below(32);
    const Word x = testing::random_word(rng, d, k);
    const Word y = testing::random_word(rng, d, k);
    const WildcardMode mode =
        trial % 2 == 0 ? WildcardMode::Concrete : WildcardMode::Wildcards;
    engine.route_into(x, y, mode, path);
    const RoutingPath reference = route_bidirectional_mp(x, y, mode);
    EXPECT_EQ(path.length(), reference.length())
        << "X=" << x.to_string() << " Y=" << y.to_string();
    EXPECT_EQ(path.apply(x), y) << "path=" << path.to_string();
    EXPECT_EQ(engine.distance(x, y), undirected_distance(x, y));
  }
}

TEST(RouteEngine, ReusableAcrossDifferentLengthsAndRadixes) {
  BidirectionalRouteEngine engine(16);
  RoutingPath path;
  const Word a(2, {0, 1, 1});
  const Word b(2, {1, 1, 0});
  engine.route_into(a, b, WildcardMode::Concrete, path);
  EXPECT_EQ(path.apply(a), b);
  const Word c(5, {4, 0, 2, 3, 1, 0, 4});
  const Word e(5, {0, 0, 1, 2, 3, 4, 4});
  engine.route_into(c, e, WildcardMode::Concrete, path);
  EXPECT_EQ(path.apply(c), e);
}

TEST(RouteEngine, EnforcesMaxK) {
  BidirectionalRouteEngine engine(4);
  const Word x = Word::zero(2, 5);
  RoutingPath path;
  EXPECT_THROW(engine.route_into(x, x, WildcardMode::Concrete, path),
               ContractViolation);
  EXPECT_THROW(engine.distance(x, x), ContractViolation);
  EXPECT_THROW(BidirectionalRouteEngine{0}, ContractViolation);
}

TEST(RouteEngine, AllPairsSweepAgainstBfsValidatedRouter) {
  BidirectionalRouteEngine engine(8);
  RoutingPath path;
  for (const std::uint32_t d : {2u, 3u}) {
    const std::size_t k = d == 2 ? 5u : 3u;
    const std::uint64_t n = Word::vertex_count(d, k);
    for (std::uint64_t xr = 0; xr < n; ++xr) {
      for (std::uint64_t yr = 0; yr < n; ++yr) {
        const Word x = Word::from_rank(d, k, xr);
        const Word y = Word::from_rank(d, k, yr);
        engine.route_into(x, y, WildcardMode::Concrete, path);
        EXPECT_EQ(static_cast<int>(path.length()), undirected_distance(x, y));
        EXPECT_EQ(path.apply(x), y);
      }
    }
  }
}

}  // namespace
}  // namespace dbn
