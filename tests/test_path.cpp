#include <gtest/gtest.h>

#include "common/contract.hpp"
#include "common/rng.hpp"
#include "core/path.hpp"
#include "testing_util.hpp"

namespace dbn {
namespace {

TEST(RoutingPath, ApplyFollowsShiftSemantics) {
  const Word x(2, {0, 1, 1});
  RoutingPath path({{ShiftType::Left, 0}, {ShiftType::Right, 1}});
  // (0,1,1) -L0-> (1,1,0) -R1-> (1,1,1).
  EXPECT_EQ(path.apply(x), Word(2, {1, 1, 1}));
}

TEST(RoutingPath, EmptyPathIsIdentity) {
  const Word x(3, {2, 0, 1});
  EXPECT_EQ(RoutingPath{}.apply(x), x);
  EXPECT_TRUE(RoutingPath{}.empty());
}

TEST(RoutingPath, WildcardUsesResolver) {
  const Word x(2, {0, 0});
  RoutingPath path({{ShiftType::Left, kWildcard}, {ShiftType::Left, kWildcard}});
  EXPECT_TRUE(path.has_wildcards());
  // Default resolver substitutes zeros.
  EXPECT_EQ(path.apply(x), Word(2, {0, 0}));
  // A custom resolver sees index, type, and current word.
  std::vector<std::size_t> indices;
  const Word got = path.apply(x, [&](std::size_t i, ShiftType t, const Word& at) {
    EXPECT_EQ(t, ShiftType::Left);
    EXPECT_EQ(at.length(), 2u);
    indices.push_back(i);
    return static_cast<Digit>(1);
  });
  EXPECT_EQ(got, Word(2, {1, 1}));
  EXPECT_EQ(indices, (std::vector<std::size_t>{0, 1}));
}

TEST(RoutingPath, ConcretePathHasNoWildcards) {
  RoutingPath path({{ShiftType::Right, 1}});
  EXPECT_FALSE(path.has_wildcards());
}

TEST(RoutingPath, ApplyRejectsOutOfRangeDigit) {
  const Word x(2, {0, 1});
  RoutingPath path({{ShiftType::Left, 5}});
  EXPECT_THROW(path.apply(x), ContractViolation);
}

TEST(RoutingPath, ToStringUsesPaperNotation) {
  RoutingPath path({{ShiftType::Left, 1}, {ShiftType::Right, kWildcard}});
  EXPECT_EQ(path.to_string(), "{(0,1),(1,*)}");
  EXPECT_EQ(RoutingPath{}.to_string(), "{}");
}

TEST(RoutingPath, HopAccessorBoundsChecked) {
  RoutingPath path({{ShiftType::Left, 0}});
  EXPECT_EQ(path.hop(0), (Hop{ShiftType::Left, 0}));
  EXPECT_THROW(path.hop(1), ContractViolation);
}

TEST(RoutingPath, RandomWalkMatchesManualShifts) {
  Rng rng(66);
  for (int trial = 0; trial < 100; ++trial) {
    const std::uint32_t d = 2 + trial % 4;
    const std::size_t k = 1 + rng.below(8);
    Word w = testing::random_word(rng, d, k);
    RoutingPath path;
    Word expected = w;
    for (int h = 0; h < 12; ++h) {
      const Digit a = static_cast<Digit>(rng.below(d));
      if (rng.chance(0.5)) {
        path.push({ShiftType::Left, a});
        expected.left_shift_inplace(a);
      } else {
        path.push({ShiftType::Right, a});
        expected.right_shift_inplace(a);
      }
    }
    EXPECT_EQ(path.apply(w), expected);
    EXPECT_EQ(path.length(), 12u);
  }
}

}  // namespace
}  // namespace dbn
