// Replays every checked-in corpus case (tests/corpus/*.case) through a
// fresh OracleSet of its network. The corpus holds pairs that once broke
// (or nearly broke) an implementation; each must now pass the full
// conformance check — distance agreement, path validity, length coherence
// and Theorem 2 shape.
#include <gtest/gtest.h>

#include "testkit/corpus.hpp"
#include "testkit/fuzzer.hpp"

#ifndef DBN_CORPUS_DIR
#error "DBN_CORPUS_DIR must point at tests/corpus (set by tests/CMakeLists.txt)"
#endif

namespace dbn::testkit {
namespace {

TEST(ConformanceCorpus, CorpusIsNonEmpty) {
  const std::vector<std::string> files = list_corpus_files(DBN_CORPUS_DIR);
  EXPECT_GE(files.size(), 3u) << "expected seed corpus under " << DBN_CORPUS_DIR;
  std::size_t cases = 0;
  for (const std::string& file : files) {
    cases += load_corpus_file(file).size();
  }
  EXPECT_GE(cases, 10u);
}

TEST(ConformanceCorpus, EveryCaseRoundTripsThroughTheLineFormat) {
  for (const std::string& file : list_corpus_files(DBN_CORPUS_DIR)) {
    for (const CorpusCase& c : load_corpus_file(file)) {
      const CorpusCase reparsed = CorpusCase::parse(c.to_line());
      EXPECT_EQ(reparsed.to_line(), c.to_line()) << "in " << file;
      EXPECT_EQ(reparsed.word_x(), c.word_x());
      EXPECT_EQ(reparsed.word_y(), c.word_y());
    }
  }
}

TEST(ConformanceCorpus, EveryCasePassesConformance) {
  for (const std::string& file : list_corpus_files(DBN_CORPUS_DIR)) {
    for (const CorpusCase& c : load_corpus_file(file)) {
      const PairReport report = replay_case(c);
      EXPECT_TRUE(report.ok())
          << file << ": \"" << c.to_line() << "\"\n" << report.to_string();
    }
  }
}

TEST(ConformanceCorpus, ReplayHelperAgreesWithPerCaseReplay) {
  const std::vector<std::string> failing =
      replay_corpus_files(list_corpus_files(DBN_CORPUS_DIR));
  EXPECT_TRUE(failing.empty()) << failing.front();
}

}  // namespace
}  // namespace dbn::testkit
