#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "common/contract.hpp"
#include "net/traffic.hpp"
#include "testing_util.hpp"

namespace dbn::net {
namespace {

TEST(Traffic, UniformScheduleIsSortedAndInRange) {
  Rng rng(1);
  const auto schedule = uniform_traffic(2, 4, 0.5, 50.0, rng);
  ASSERT_FALSE(schedule.empty());
  const std::uint64_t n = 16;
  for (std::size_t i = 0; i < schedule.size(); ++i) {
    EXPECT_GE(schedule[i].time, 0.0);
    EXPECT_LT(schedule[i].time, 50.0);
    EXPECT_LT(schedule[i].source, n);
    EXPECT_LT(schedule[i].destination, n);
    if (i > 0) {
      EXPECT_LE(schedule[i - 1].time, schedule[i].time);
    }
  }
}

TEST(Traffic, UniformRateControlsVolume) {
  Rng rng(2);
  // Expected messages = N * rate * duration = 16 * 0.5 * 200 = 1600.
  const auto schedule = uniform_traffic(2, 4, 0.5, 200.0, rng);
  EXPECT_NEAR(static_cast<double>(schedule.size()), 1600.0, 200.0);
  // Sources are roughly balanced.
  std::vector<int> per_source(16, 0);
  for (const auto& inj : schedule) {
    ++per_source[inj.source];
  }
  for (int c : per_source) {
    EXPECT_NEAR(c, 100, 50);
  }
}

TEST(Traffic, UniformRejectsBadParameters) {
  Rng rng(3);
  EXPECT_THROW(uniform_traffic(2, 3, 0.0, 10.0, rng), ContractViolation);
  EXPECT_THROW(uniform_traffic(2, 3, 1.0, 0.0, rng), ContractViolation);
}

TEST(Traffic, HotspotSkewsDestinations) {
  Rng rng(4);
  const std::uint64_t hotspot = 5;
  const auto schedule = hotspot_traffic(2, 4, 0.5, 200.0, 0.6, hotspot, rng);
  std::size_t to_hotspot = 0;
  for (const auto& inj : schedule) {
    to_hotspot += (inj.destination == hotspot);
  }
  const double fraction =
      static_cast<double>(to_hotspot) / static_cast<double>(schedule.size());
  // 0.6 redirected plus ~1/16 of the remainder.
  EXPECT_NEAR(fraction, 0.6 + 0.4 / 16.0, 0.05);
}

TEST(Traffic, HotspotValidatesArguments) {
  Rng rng(5);
  EXPECT_THROW(hotspot_traffic(2, 3, 1.0, 1.0, 1.5, 0, rng),
               ContractViolation);
  EXPECT_THROW(hotspot_traffic(2, 3, 1.0, 1.0, 0.5, 8, rng),
               ContractViolation);
}

TEST(Traffic, PermutationIsABijectionAtTimeZero) {
  Rng rng(6);
  const auto schedule = permutation_traffic(3, 3, rng);
  ASSERT_EQ(schedule.size(), 27u);
  std::set<std::uint64_t> sources, destinations;
  for (const auto& inj : schedule) {
    EXPECT_DOUBLE_EQ(inj.time, 0.0);
    sources.insert(inj.source);
    destinations.insert(inj.destination);
  }
  EXPECT_EQ(sources.size(), 27u);
  EXPECT_EQ(destinations.size(), 27u);
}

TEST(Traffic, ReversalMapsToDigitReversedAddress) {
  const auto schedule = reversal_traffic(2, 4);
  ASSERT_EQ(schedule.size(), 16u);
  for (const auto& inj : schedule) {
    const Word src = Word::from_rank(2, 4, inj.source);
    EXPECT_EQ(inj.destination, src.reversed().rank());
  }
  // Reversal is an involution: applying it twice is the identity.
  EXPECT_EQ(schedule[6].destination,
            Word::from_rank(2, 4, 6).reversed().rank());
}

}  // namespace
}  // namespace dbn::net
