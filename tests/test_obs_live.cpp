// Observability live-plane tests: the json_parse reader (the probe
// clients' side of obs/json, which so far only wrote JSON) and the
// MetricsTimeline recorder (delta encoding, cumulative values, ring
// eviction, and a flush that its own parser can read back).
#include <gtest/gtest.h>

#include <chrono>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "common/schema.hpp"
#include "obs/json.hpp"
#include "obs/live.hpp"
#include "obs/metrics.hpp"

namespace {

using namespace dbn;

TEST(JsonParse, ReadsScalarsObjectsAndArrays) {
  const auto doc = obs::json_parse(
      R"({"name":"serve.requests","count":42,"ok":true,"gone":null,)"
      R"("ratio":-2.5e-1,"tags":["a","b"],"nested":{"depth":2}})");
  ASSERT_TRUE(doc.has_value());
  ASSERT_TRUE(doc->is_object());
  EXPECT_EQ(doc->string_at("name"), "serve.requests");
  EXPECT_EQ(doc->number_at("count"), 42.0);
  EXPECT_EQ(doc->number_at("ratio"), -0.25);
  EXPECT_EQ(doc->number_at("absent", -1.0), -1.0);
  const obs::JsonValue* ok = doc->find("ok");
  ASSERT_NE(ok, nullptr);
  EXPECT_EQ(ok->kind, obs::JsonValue::Kind::Bool);
  EXPECT_TRUE(ok->boolean);
  const obs::JsonValue* gone = doc->find("gone");
  ASSERT_NE(gone, nullptr);
  EXPECT_EQ(gone->kind, obs::JsonValue::Kind::Null);
  const obs::JsonValue* tags = doc->find("tags");
  ASSERT_NE(tags, nullptr);
  ASSERT_TRUE(tags->is_array());
  ASSERT_EQ(tags->items.size(), 2u);
  EXPECT_EQ(tags->items[1].string, "b");
  const obs::JsonValue* nested = doc->find("nested");
  ASSERT_NE(nested, nullptr);
  EXPECT_EQ(nested->number_at("depth"), 2.0);
}

TEST(JsonParse, DecodesEscapesIncludingUnicode) {
  const auto doc = obs::json_parse(R"({"s":"a\"b\\c\n\tAé"})");
  ASSERT_TRUE(doc.has_value());
  EXPECT_EQ(doc->string_at("s"), "a\"b\\c\n\tA\xc3\xa9");
}

TEST(JsonParse, RejectsMalformedInput) {
  EXPECT_FALSE(obs::json_parse("").has_value());
  EXPECT_FALSE(obs::json_parse("{").has_value());
  EXPECT_FALSE(obs::json_parse("{}extra").has_value());
  EXPECT_FALSE(obs::json_parse("{'single':1}").has_value());
  EXPECT_FALSE(obs::json_parse("{\"a\":01}").has_value());
  EXPECT_FALSE(obs::json_parse("[1,]").has_value());
  EXPECT_FALSE(obs::json_parse("nul").has_value());
  // Depth bomb: past the parser's nesting cap, not past the stack.
  std::string deep(100, '[');
  deep += std::string(100, ']');
  EXPECT_FALSE(obs::json_parse(deep).has_value());
}

TEST(JsonParse, RoundTripsMetricsSnapshotJson) {
  obs::MetricsRegistry registry;
  registry.counter("a.count").inc(3);
  registry.histogram("a.lat", {1.0, 10.0}).observe(5.0);
  registry.gauge("a.depth").set(-2);
  const auto doc = obs::json_parse(registry.snapshot().to_json());
  ASSERT_TRUE(doc.has_value());
  EXPECT_EQ(doc->string_at("schema"), schema::kMetrics);
  const obs::JsonValue* metrics = doc->find("metrics");
  ASSERT_NE(metrics, nullptr);
  ASSERT_TRUE(metrics->is_array());
  ASSERT_EQ(metrics->items.size(), 3u);
  EXPECT_EQ(metrics->items[0].string_at("name"), "a.count");
  EXPECT_EQ(metrics->items[0].number_at("count"), 3.0);
  EXPECT_EQ(metrics->items[2].string_at("name"), "a.lat");
  const obs::JsonValue* buckets = metrics->items[2].find("buckets");
  ASSERT_NE(buckets, nullptr);
  ASSERT_EQ(buckets->items.size(), 3u);
  EXPECT_EQ(buckets->items[1].number, 1.0);
}

TEST(MetricsTimeline, FirstSampleCarriesAllLaterSamplesOnlyChanges) {
  obs::MetricsRegistry registry;
  obs::Counter requests = registry.counter("x.requests");
  obs::Gauge depth = registry.gauge("x.depth");
  requests.inc(5);
  depth.set(2);

  obs::MetricsTimelineOptions options;
  options.registry = &registry;
  obs::MetricsTimeline timeline(options);

  EXPECT_EQ(timeline.sample_now(), 2u);  // everything is new
  EXPECT_EQ(timeline.sample_now(), 0u);  // nothing moved; still a sample
  requests.inc();
  EXPECT_EQ(timeline.sample_now(), 1u);  // only the counter moved
  EXPECT_EQ(timeline.sample_count(), 3u);
  EXPECT_EQ(timeline.dropped(), 0u);

  std::ostringstream out;
  timeline.flush(out);
  std::istringstream in(out.str());
  std::string line;
  ASSERT_TRUE(std::getline(in, line));
  const auto header = obs::json_parse(line);
  ASSERT_TRUE(header.has_value());
  EXPECT_EQ(header->string_at("schema"), schema::kMetricsTs);
  EXPECT_EQ(header->number_at("samples"), 3.0);
  EXPECT_EQ(header->number_at("dropped"), 0.0);

  std::vector<obs::JsonValue> samples;
  while (std::getline(in, line)) {
    auto sample = obs::json_parse(line);
    ASSERT_TRUE(sample.has_value()) << line;
    samples.push_back(std::move(*sample));
  }
  ASSERT_EQ(samples.size(), 3u);
  EXPECT_EQ(samples[0].find("metrics")->items.size(), 2u);
  EXPECT_EQ(samples[1].find("metrics")->items.size(), 0u);
  ASSERT_EQ(samples[2].find("metrics")->items.size(), 1u);
  // Delta selection, cumulative values: the changed entry carries its
  // merged total, not the movement since the previous sample.
  const obs::JsonValue& changed = samples[2].find("metrics")->items[0];
  EXPECT_EQ(changed.string_at("name"), "x.requests");
  EXPECT_EQ(changed.number_at("count"), 6.0);
  // seq strictly increasing, ts_us monotone.
  for (std::size_t i = 1; i < samples.size(); ++i) {
    EXPECT_GT(samples[i].number_at("seq"), samples[i - 1].number_at("seq"));
    EXPECT_GE(samples[i].number_at("ts_us"),
              samples[i - 1].number_at("ts_us"));
  }
}

TEST(MetricsTimeline, RingEvictionCountsDroppedAndKeepsSeq) {
  obs::MetricsRegistry registry;
  obs::Counter ticks = registry.counter("x.ticks");
  obs::MetricsTimelineOptions options;
  options.registry = &registry;
  options.capacity = 3;
  obs::MetricsTimeline timeline(options);
  for (int i = 0; i < 8; ++i) {
    ticks.inc();
    timeline.sample_now();
  }
  EXPECT_EQ(timeline.sample_count(), 3u);
  EXPECT_EQ(timeline.dropped(), 5u);

  std::ostringstream out;
  timeline.flush(out);
  std::istringstream in(out.str());
  std::string line;
  ASSERT_TRUE(std::getline(in, line));
  const auto header = obs::json_parse(line);
  ASSERT_TRUE(header.has_value());
  EXPECT_EQ(header->number_at("samples"), 3.0);
  EXPECT_EQ(header->number_at("dropped"), 5.0);
  ASSERT_TRUE(std::getline(in, line));
  const auto first_kept = obs::json_parse(line);
  ASSERT_TRUE(first_kept.has_value());
  // Samples 0..4 were evicted; the global sequence is still visible.
  EXPECT_EQ(first_kept->number_at("seq"), 5.0);
  EXPECT_EQ(first_kept->find("metrics")->items[0].number_at("count"), 6.0);
}

TEST(MetricsTimeline, BackgroundSamplerStopsCleanly) {
  obs::MetricsRegistry registry;
  obs::Counter ticks = registry.counter("x.ticks");
  obs::MetricsTimelineOptions options;
  options.registry = &registry;
  options.interval = std::chrono::microseconds(500);
  obs::MetricsTimeline timeline(options);
  timeline.start();
  timeline.start();  // idempotent
  ticks.inc();
  // The sampler fires on its own; wait for at least one sample.
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (timeline.sample_count() == 0 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::yield();
  }
  EXPECT_GT(timeline.sample_count(), 0u);
  timeline.stop();
  timeline.stop();  // idempotent
  const std::size_t after_stop = timeline.sample_count();
  timeline.sample_now();  // the drain path's final cut still works
  EXPECT_EQ(timeline.sample_count(), after_stop + 1);
}

}  // namespace
