#include <gtest/gtest.h>

#include <set>

#include "common/contract.hpp"
#include "debruijn/kautz.hpp"
#include "testing_util.hpp"

namespace dbn {
namespace {

TEST(Kautz, VertexCountIsDPlusOneTimesDToKMinusOne) {
  EXPECT_EQ(KautzGraph(2, 1).vertex_count(), 3u);
  EXPECT_EQ(KautzGraph(2, 3).vertex_count(), 12u);
  EXPECT_EQ(KautzGraph(3, 3).vertex_count(), 36u);
  EXPECT_EQ(KautzGraph(4, 2).vertex_count(), 20u);
}

TEST(Kautz, RankWordRoundTripsAndWordsAreValid) {
  for (const auto& [d, k] : std::vector<std::pair<std::uint32_t, std::size_t>>{
           {2, 1}, {2, 4}, {3, 3}, {4, 2}}) {
    const KautzGraph g(d, k);
    std::set<std::uint64_t> seen;
    for (std::uint64_t r = 0; r < g.vertex_count(); ++r) {
      const Word w = g.word(r);
      EXPECT_EQ(w.length(), k);
      EXPECT_EQ(w.radix(), d + 1);
      for (std::size_t i = 1; i < k; ++i) {
        EXPECT_NE(w.digit(i), w.digit(i - 1))
            << "adjacent equal digits in " << w.to_string();
      }
      EXPECT_EQ(g.rank(w), r);
      seen.insert(w.rank());  // base-(d+1) value: all distinct
    }
    EXPECT_EQ(seen.size(), g.vertex_count());
  }
}

TEST(Kautz, OutNeighborsAreLeftShiftsWithDistinctAppend) {
  const KautzGraph g(3, 3);
  for (std::uint64_t v = 0; v < g.vertex_count(); ++v) {
    const auto nbrs = g.out_neighbors(v);
    EXPECT_EQ(nbrs.size(), 3u);  // exactly d
    const Word w = g.word(v);
    const std::set<std::uint64_t> nbr_set(nbrs.begin(), nbrs.end());
    EXPECT_EQ(nbr_set.size(), nbrs.size());
    for (const std::uint64_t u : nbrs) {
      const Word next = g.word(u);
      // (x2,...,xk) prefix preserved.
      for (std::size_t i = 0; i + 1 < w.length(); ++i) {
        EXPECT_EQ(next.digit(i), w.digit(i + 1));
      }
      EXPECT_NE(next.digit(w.length() - 1), w.digit(w.length() - 1));
    }
    // No self-loops in a Kautz graph.
    EXPECT_FALSE(nbr_set.contains(v));
  }
}

TEST(Kautz, DiameterIsExactlyK) {
  for (const auto& [d, k] : std::vector<std::pair<std::uint32_t, std::size_t>>{
           {2, 1}, {2, 2}, {2, 3}, {2, 4}, {3, 2}, {3, 3}, {4, 2}}) {
    const KautzGraph g(d, k);
    EXPECT_EQ(g.diameter(), static_cast<int>(k)) << "K(" << d << "," << k << ")";
  }
}

TEST(Kautz, BeatsDeBruijnAtEqualDegreeAndDiameter) {
  // K(d,k) has (d+1)/d times the vertices of DG(d,k) with the same
  // out-degree d and the same diameter k.
  for (const auto& [d, k] : std::vector<std::pair<std::uint32_t, std::size_t>>{
           {2, 3}, {3, 3}, {4, 2}}) {
    const KautzGraph kautz(d, k);
    const std::uint64_t debruijn = Word::vertex_count(d, k);
    EXPECT_GT(kautz.vertex_count(), debruijn);
    EXPECT_EQ(kautz.vertex_count(), debruijn / d * (d + 1));
  }
}

TEST(Kautz, RejectsBadArguments) {
  // K(1,k) is the valid degenerate 2-cycle; degree 0 is rejected.
  EXPECT_NO_THROW(KautzGraph(1, 3));
  EXPECT_THROW(KautzGraph(0, 3), ContractViolation);
  const KautzGraph g(2, 2);
  EXPECT_THROW(g.word(12), ContractViolation);
  EXPECT_THROW(g.rank(Word(3, {1, 1})), ContractViolation);
  EXPECT_THROW(g.rank(Word(2, {0, 1})), ContractViolation);
}

}  // namespace
}  // namespace dbn
