// Edge cases that cut across modules: extreme radixes, in-run hook
// injection, big payloads, and an extra-large-alphabet all-pairs sweep.
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "core/distance.hpp"
#include "core/routers.hpp"
#include "debruijn/bfs.hpp"
#include "net/message.hpp"
#include "net/simulator.hpp"
#include "testing_util.hpp"

namespace dbn {
namespace {

TEST(EdgeCases, LargeRadixAllPairsAgainstBfs) {
  // d = 11 exceeds every digit assumption a binary-focused implementation
  // might hide; full all-pairs validation (N = 1331).
  const std::uint32_t d = 11;
  const std::size_t k = 3;
  const DeBruijnGraph g(d, k, Orientation::Undirected);
  const DeBruijnGraph gd(d, k, Orientation::Directed);
  for (std::uint64_t xr = 0; xr < g.vertex_count(); xr += 7) {
    const Word x = g.word(xr);
    const auto und = bfs_distances(g, xr);
    const auto dir = bfs_distances(gd, xr);
    for (std::uint64_t yr = 0; yr < g.vertex_count(); ++yr) {
      const Word y = g.word(yr);
      EXPECT_EQ(undirected_distance(x, y), und[yr]);
      EXPECT_EQ(directed_distance(x, y), dir[yr]);
      EXPECT_EQ(route_bidirectional_suffix_tree(x, y).length(),
                static_cast<std::size_t>(und[yr]));
    }
  }
}

TEST(EdgeCases, HugeRadixWordsRoute) {
  // Radix 65536: digits far outside char range.
  const std::uint32_t d = 1u << 16;
  Rng rng(55);
  for (int trial = 0; trial < 20; ++trial) {
    const std::size_t k = 1 + rng.below(8);
    const Word x = testing::random_word(rng, d, k);
    const Word y = testing::random_word(rng, d, k);
    const RoutingPath path = route_bidirectional_mp(x, y);
    EXPECT_EQ(path.apply(x), y);
    EXPECT_EQ(static_cast<int>(path.length()), undirected_distance(x, y));
    // Random words over a huge alphabet almost never share digits, so the
    // distance is almost always exactly k.
    EXPECT_LE(path.length(), k);
  }
}

TEST(EdgeCases, DeliveryHookMayInjectReentrantly) {
  // A ping-pong protocol implemented purely in the hook: on delivery of a
  // Data message, send an Ack back along the reverse route.
  using namespace dbn::net;
  SimConfig config;
  config.radix = 2;
  config.k = 5;
  Simulator sim(config);
  int acks_sent = 0;
  sim.set_delivery_hook([&](const Message& m, double time) {
    if (m.control == ControlCode::Data) {
      ++acks_sent;
      sim.inject(time, Message(ControlCode::Ack, m.destination, m.source,
                               route_bidirectional_mp(m.destination,
                                                      m.source)));
    }
  });
  Rng rng(66);
  const int kMessages = 30;
  for (int i = 0; i < kMessages; ++i) {
    const Word src = testing::random_word(rng, 2, 5);
    const Word dst = testing::random_word(rng, 2, 5);
    sim.inject(1.5 * i, Message(ControlCode::Data, src, dst,
                                route_bidirectional_mp(src, dst)));
  }
  sim.run();
  EXPECT_EQ(acks_sent, kMessages);
  // Every Data message and every Ack delivered.
  EXPECT_EQ(sim.stats().delivered, static_cast<std::uint64_t>(2 * kMessages));
  EXPECT_EQ(sim.stats().injected, static_cast<std::uint64_t>(2 * kMessages));
}

TEST(EdgeCases, LargePayloadRoundTrip) {
  using namespace dbn::net;
  const Word w(2, {0, 1, 1, 0});
  std::vector<std::uint8_t> payload(1 << 16);
  Rng rng(77);
  for (auto& b : payload) {
    b = static_cast<std::uint8_t>(rng.below(256));
  }
  const Message m(ControlCode::Data, w, w, RoutingPath{}, payload);
  const auto back = decode(encode(m));
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->payload, payload);
}

TEST(EdgeCases, KEqualsOneEverywhere) {
  // DG(d,1) is the complete graph with loops; everything must still hold.
  for (const std::uint32_t d : {2u, 5u, 9u}) {
    const DeBruijnGraph g(d, 1, Orientation::Undirected);
    for (std::uint64_t a = 0; a < d; ++a) {
      for (std::uint64_t b = 0; b < d; ++b) {
        const Word x = g.word(a);
        const Word y = g.word(b);
        const int expected = a == b ? 0 : 1;
        EXPECT_EQ(undirected_distance(x, y), expected);
        EXPECT_EQ(directed_distance(x, y), expected);
        EXPECT_EQ(route_bidirectional_suffix_tree(x, y).length(),
                  static_cast<std::size_t>(expected));
        EXPECT_EQ(route_unidirectional(x, y).length(),
                  static_cast<std::size_t>(expected));
      }
    }
  }
}

}  // namespace
}  // namespace dbn
