#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "common/contract.hpp"
#include "common/rng.hpp"
#include "strings/matching.hpp"
#include "strings/naive.hpp"
#include "strings/suffix_automaton.hpp"
#include "testing_util.hpp"

namespace dbn::strings {
namespace {

using dbn::testing::random_symbols;

TEST(SuffixAutomaton, ContainsExactlyTheSubstrings) {
  Rng rng(81);
  for (int trial = 0; trial < 60; ++trial) {
    const std::uint32_t alphabet = 2 + trial % 2;
    const auto text = random_symbols(rng, 1 + rng.below(30), alphabet);
    const SuffixAutomaton sam(text);
    // All substrings are accepted.
    for (std::size_t i = 0; i < text.size(); ++i) {
      for (std::size_t len = 1; i + len <= text.size(); ++len) {
        const std::vector<Symbol> sub(text.begin() + static_cast<long>(i),
                                      text.begin() + static_cast<long>(i + len));
        EXPECT_TRUE(sam.contains(sub));
      }
    }
    // Random probes agree with direct search.
    for (int probe = 0; probe < 100; ++probe) {
      const auto pat = random_symbols(rng, 1 + rng.below(5), alphabet);
      const bool expected =
          std::search(text.begin(), text.end(), pat.begin(), pat.end()) !=
          text.end();
      EXPECT_EQ(sam.contains(pat), expected);
    }
  }
}

TEST(SuffixAutomaton, StateCountBound) {
  Rng rng(82);
  for (int trial = 0; trial < 50; ++trial) {
    const std::size_t n = 2 + rng.below(200);
    const auto text = random_symbols(rng, n, 2);
    const SuffixAutomaton sam(text);
    EXPECT_LE(sam.state_count(), static_cast<int>(2 * n));
  }
}

TEST(SuffixAutomaton, DistinctSubstringCountMatchesBruteForce) {
  Rng rng(83);
  for (int trial = 0; trial < 60; ++trial) {
    const auto text = random_symbols(rng, 1 + rng.below(24), 2 + trial % 2);
    const SuffixAutomaton sam(text);
    std::set<std::vector<Symbol>> all;
    for (std::size_t i = 0; i < text.size(); ++i) {
      for (std::size_t len = 1; i + len <= text.size(); ++len) {
        all.insert({text.begin() + static_cast<long>(i),
                    text.begin() + static_cast<long>(i + len)});
      }
    }
    EXPECT_EQ(sam.distinct_substring_count(), all.size()) << "trial " << trial;
  }
}

TEST(SuffixAutomaton, MatchingStatisticsMatchBruteForce) {
  Rng rng(84);
  for (int trial = 0; trial < 100; ++trial) {
    const std::uint32_t alphabet = 2 + trial % 2;
    const auto text = random_symbols(rng, 1 + rng.below(25), alphabet);
    const auto t = random_symbols(rng, 1 + rng.below(25), alphabet);
    const SuffixAutomaton sam(text);
    const auto ms = sam.matching_statistics(t);
    for (std::size_t j = 0; j < t.size(); ++j) {
      // Brute force: longest suffix of t[0..j] occurring in text.
      int expected = 0;
      for (std::size_t s = 1; s <= j + 1; ++s) {
        const std::vector<Symbol> suffix(t.begin() + static_cast<long>(j + 1 - s),
                                         t.begin() + static_cast<long>(j + 1));
        if (std::search(text.begin(), text.end(), suffix.begin(),
                        suffix.end()) != text.end()) {
          expected = static_cast<int>(s);
        }
      }
      EXPECT_EQ(ms[j], expected) << "trial " << trial << " j=" << j;
    }
  }
}

TEST(SuffixAutomaton, LongestCommonSubstringMatchesNaive) {
  Rng rng(85);
  for (int trial = 0; trial < 150; ++trial) {
    const std::uint32_t alphabet = 2 + trial % 3;
    const auto a = random_symbols(rng, 1 + rng.below(40), alphabet);
    const auto b = random_symbols(rng, 1 + rng.below(40), alphabet);
    const SuffixAutomaton sam(a);
    EXPECT_EQ(sam.longest_common_substring(b),
              naive::longest_common_substring(a, b))
        << "trial " << trial;
  }
}

TEST(SamMinLCost, MatchesOtherKernels) {
  Rng rng(86);
  for (int trial = 0; trial < 400; ++trial) {
    const std::uint32_t alphabet = 2 + trial % 4;
    const std::size_t k = 1 + rng.below(24);
    const auto x = random_symbols(rng, k, alphabet);
    const auto y = random_symbols(rng, k, alphabet);
    const OverlapMin sam = min_l_cost_suffix_automaton(x, y);
    const OverlapMin mp = min_l_cost(x, y);
    EXPECT_EQ(sam.cost, mp.cost)
        << "trial " << trial << " k=" << k << " alphabet=" << alphabet;
    if (sam.theta > 0) {
      EXPECT_LE(sam.theta,
                naive::matching_l(x, y, static_cast<std::size_t>(sam.s - 1),
                                  static_cast<std::size_t>(sam.t - 1)))
          << "witness must be a genuine match, trial " << trial;
    }
    EXPECT_EQ(sam.cost,
              2 * static_cast<int>(k) - 1 + sam.s - sam.t - sam.theta);
  }
}

TEST(SamMinLCost, EdgeCases) {
  const auto a = to_symbols("a");
  const auto b = to_symbols("b");
  EXPECT_EQ(min_l_cost_suffix_automaton(a, a).cost, 0);
  EXPECT_EQ(min_l_cost_suffix_automaton(a, b).cost, 1);
  const auto x = to_symbols("0101");
  EXPECT_EQ(min_l_cost_suffix_automaton(x, x).cost, 0);
  EXPECT_THROW(min_l_cost_suffix_automaton(a, to_symbols("ab")),
               ContractViolation);
}

}  // namespace
}  // namespace dbn::strings
