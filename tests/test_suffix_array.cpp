#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>

#include "common/contract.hpp"
#include "common/rng.hpp"
#include "strings/matching.hpp"
#include "strings/naive.hpp"
#include "strings/suffix_array.hpp"
#include "strings/suffix_tree.hpp"
#include "testing_util.hpp"

namespace dbn::strings {
namespace {

using dbn::testing::random_symbols;

std::vector<int> brute_suffix_array(const std::vector<Symbol>& s) {
  std::vector<int> sa(s.size());
  std::iota(sa.begin(), sa.end(), 0);
  std::sort(sa.begin(), sa.end(), [&](int a, int b) {
    return std::lexicographical_compare(s.begin() + a, s.end(),
                                        s.begin() + b, s.end());
  });
  return sa;
}

int brute_lcp(const std::vector<Symbol>& s, std::size_t i, std::size_t j) {
  int l = 0;
  while (i + static_cast<std::size_t>(l) < s.size() &&
         j + static_cast<std::size_t>(l) < s.size() &&
         s[i + static_cast<std::size_t>(l)] == s[j + static_cast<std::size_t>(l)]) {
    ++l;
  }
  return l;
}

TEST(SuffixArray, KnownExample) {
  // banana: suffixes sorted = a, ana, anana, banana, na, nana
  //                    index = 5, 3, 1, 0, 4, 2.
  const auto s = to_symbols("banana");
  EXPECT_EQ(suffix_array(s), (std::vector<int>{5, 3, 1, 0, 4, 2}));
  // LCP between consecutive: -, a|ana=1, ana|anana=3, 0, na|nana... = 0, 2.
  EXPECT_EQ(lcp_array(s, suffix_array(s)), (std::vector<int>{0, 1, 3, 0, 0, 2}));
}

TEST(SuffixArray, MatchesBruteForceOnRandomStrings) {
  Rng rng(601);
  for (int trial = 0; trial < 200; ++trial) {
    const std::uint32_t alphabet = 2 + trial % 4;
    const auto s = random_symbols(rng, 1 + rng.below(80), alphabet);
    EXPECT_EQ(suffix_array(s), brute_suffix_array(s)) << "trial " << trial;
  }
}

TEST(SuffixArray, LcpArrayMatchesBruteForce) {
  Rng rng(602);
  for (int trial = 0; trial < 150; ++trial) {
    const auto s = random_symbols(rng, 1 + rng.below(60), 2 + trial % 3);
    const auto sa = suffix_array(s);
    const auto lcp = lcp_array(s, sa);
    for (std::size_t i = 1; i < sa.size(); ++i) {
      EXPECT_EQ(lcp[i],
                brute_lcp(s, static_cast<std::size_t>(sa[i - 1]),
                          static_cast<std::size_t>(sa[i])))
          << "trial " << trial << " i=" << i;
    }
  }
}

TEST(SuffixArray, AgreesWithSuffixTreeTraversal) {
  Rng rng(603);
  for (int trial = 0; trial < 100; ++trial) {
    auto s = random_symbols(rng, 1 + rng.below(50), 2 + trial % 2);
    s.push_back(100);  // unique endmarker for the tree
    const SuffixTree tree(s);
    const auto from_tree = tree.suffix_array();
    const auto from_sa = suffix_array(s);
    ASSERT_EQ(from_tree.size(), from_sa.size());
    for (std::size_t i = 0; i < from_sa.size(); ++i) {
      EXPECT_EQ(from_tree[i], static_cast<std::size_t>(from_sa[i]))
          << "trial " << trial << " i=" << i;
    }
  }
}

TEST(RmqSparseTableTest, MatchesBruteForce) {
  Rng rng(604);
  for (int trial = 0; trial < 100; ++trial) {
    std::vector<int> values(1 + rng.below(50));
    for (auto& v : values) {
      v = static_cast<int>(rng.between(-100, 100));
    }
    const RmqSparseTable rmq(values);
    for (int probe = 0; probe < 100; ++probe) {
      std::size_t l = rng.below(values.size());
      std::size_t r = rng.below(values.size());
      if (l > r) {
        std::swap(l, r);
      }
      EXPECT_EQ(rmq.min_in(l, r),
                *std::min_element(values.begin() + static_cast<long>(l),
                                  values.begin() + static_cast<long>(r) + 1));
    }
  }
}

TEST(RmqSparseTableTest, RejectsBadRanges) {
  const RmqSparseTable rmq(std::vector<int>{1, 2, 3});
  EXPECT_THROW(rmq.min_in(0, 3), ContractViolation);
  EXPECT_THROW(rmq.min_in(2, 1), ContractViolation);
}

TEST(LcpOracleTest, MatchesBruteForceOnAllPairs) {
  Rng rng(605);
  for (int trial = 0; trial < 60; ++trial) {
    const auto s = random_symbols(rng, 1 + rng.below(40), 2 + trial % 2);
    const LcpOracle oracle(s);
    for (std::size_t i = 0; i < s.size(); ++i) {
      for (std::size_t j = 0; j < s.size(); ++j) {
        EXPECT_EQ(oracle.lcp(i, j), brute_lcp(s, i, j))
            << "trial " << trial << " i=" << i << " j=" << j;
      }
    }
  }
}

TEST(SaMinLCost, MatchesOtherKernels) {
  Rng rng(606);
  for (int trial = 0; trial < 400; ++trial) {
    const std::uint32_t alphabet = 2 + trial % 4;
    const std::size_t k = 1 + rng.below(24);
    const auto x = random_symbols(rng, k, alphabet);
    const auto y = random_symbols(rng, k, alphabet);
    const OverlapMin sa = min_l_cost_suffix_array(x, y);
    const OverlapMin mp = min_l_cost(x, y);
    EXPECT_EQ(sa.cost, mp.cost)
        << "trial " << trial << " k=" << k << " alphabet=" << alphabet;
    if (sa.theta > 0) {
      EXPECT_LE(sa.theta,
                naive::matching_l(x, y, static_cast<std::size_t>(sa.s - 1),
                                  static_cast<std::size_t>(sa.t - 1)))
          << "witness must be a genuine match, trial " << trial;
    }
    EXPECT_EQ(sa.cost,
              2 * static_cast<int>(k) - 1 + sa.s - sa.t - sa.theta);
  }
}

TEST(SaMinLCost, EdgeCases) {
  const auto a = to_symbols("a");
  const auto b = to_symbols("b");
  EXPECT_EQ(min_l_cost_suffix_array(a, a).cost, 0);
  EXPECT_EQ(min_l_cost_suffix_array(a, b).cost, 1);
  EXPECT_THROW(min_l_cost_suffix_array(a, to_symbols("xy")),
               ContractViolation);
}

}  // namespace
}  // namespace dbn::strings
