// Falsification tests for the paper's Proposition 5 as printed (DESIGN.md
// §1.1): the X ⊥ reverse(Y) ⊤ tree computes reversed matches, so its
// candidate differs from the Theorem 2 l-side minimum — and routing with it
// would produce wrong distances.
#include <gtest/gtest.h>

#include <algorithm>

#include "common/rng.hpp"
#include "core/common_substring.hpp"
#include "core/distance.hpp"
#include "core/path_builder.hpp"
#include "core/prop5_as_printed.hpp"
#include "debruijn/bfs.hpp"
#include "strings/matching.hpp"
#include "testing_util.hpp"

namespace dbn {
namespace {

TEST(Prop5AsPrinted, CounterexampleFromDesignDoc) {
  // X = Y = (0,1): l_{1,2} = 2, so the true l-side minimum is 0 (the
  // distance from a vertex to itself). The printed proposition sees only
  // the reversed block "10" and cannot realize it.
  const std::vector<strings::Symbol> w = {0, 1};
  const strings::OverlapMin correct = min_l_cost_suffix_tree(w, w);
  const strings::OverlapMin printed = l_side_min_prop5_as_printed(w, w);
  EXPECT_EQ(correct.cost, 0);
  EXPECT_GT(printed.cost, 0) << "as printed, the minimum 0 is unreachable";
}

TEST(Prop5AsPrinted, AgreesOnPalindromicBlocks) {
  // When the optimal block is a palindrome the reversal is invisible:
  // X = Y = (0,0) has block "00".
  const std::vector<strings::Symbol> w = {0, 0};
  EXPECT_EQ(l_side_min_prop5_as_printed(w, w).cost,
            min_l_cost_suffix_tree(w, w).cost);
}

TEST(Prop5AsPrinted, DisagreementRateOverAllPairsIsSubstantial) {
  // Quantify the error over every ordered pair of DG(2,4): how often the
  // printed l-side candidate differs, and how often the final distance
  // min(D1,D2) (computing the r side the same printed way, via reversed
  // words) would be wrong.
  const std::uint32_t d = 2;
  const std::size_t k = 4;
  const DeBruijnGraph g(d, k, Orientation::Undirected);
  std::uint64_t l_side_wrong = 0;
  std::uint64_t distance_wrong = 0;
  std::uint64_t distance_too_small = 0;
  for (std::uint64_t xr = 0; xr < g.vertex_count(); ++xr) {
    const Word x = g.word(xr);
    const std::vector<int> bfs = bfs_distances(g, xr);
    for (std::uint64_t yr = 0; yr < g.vertex_count(); ++yr) {
      const Word y = g.word(yr);
      const strings::OverlapMin printed_l =
          l_side_min_prop5_as_printed(x.symbols(), y.symbols());
      const strings::OverlapMin correct_l =
          min_l_cost_suffix_tree(x.symbols(), y.symbols());
      l_side_wrong += printed_l.cost != correct_l.cost;
      const Word xrv = x.reversed();
      const Word yrv = y.reversed();
      const strings::OverlapMin printed_r = r_side_from_reversed(
          static_cast<int>(k),
          l_side_min_prop5_as_printed(xrv.symbols(), yrv.symbols()));
      const int printed_distance = std::min(printed_l.cost, printed_r.cost);
      distance_wrong += printed_distance != bfs[yr];
      distance_too_small += printed_distance < bfs[yr];
    }
  }
  const std::uint64_t pairs = g.vertex_count() * g.vertex_count();
  // The printed kernel is wrong on a large fraction of pairs, and it even
  // *underestimates* true distances (e.g. X = (0,1), Y = (1,0): the
  // reversed-block match "01" yields candidate 0, but D = 1) — so paths
  // planned from it would be invalid, not merely suboptimal.
  EXPECT_GT(l_side_wrong, pairs / 10)
      << "expected substantial disagreement, got " << l_side_wrong << "/"
      << pairs;
  EXPECT_GT(distance_wrong, 0u);
  EXPECT_GT(distance_too_small, 0u);
}

TEST(Prop5AsPrinted, CanUnderestimateTheTrueDistance) {
  // X = (0,1), Y = (1,0): LCP of "01..." with reverse(Y) = "01..." is 2,
  // giving the printed candidate k-2+1+1-2 = 0, yet D(X,Y) = 1.
  const std::vector<strings::Symbol> x = {0, 1};
  const std::vector<strings::Symbol> y = {1, 0};
  EXPECT_EQ(l_side_min_prop5_as_printed(x, y).cost, 0);
  EXPECT_EQ(undirected_distance(Word(2, {0, 1}), Word(2, {1, 0})), 1);
}

TEST(Prop5AsPrinted, NeverBeatsTheDiameter) {
  Rng rng(4242);
  for (int trial = 0; trial < 200; ++trial) {
    const std::uint32_t d = 2 + trial % 3;
    const std::size_t k = 1 + rng.below(10);
    const Word x = testing::random_word(rng, d, k);
    const Word y = testing::random_word(rng, d, k);
    const auto printed = l_side_min_prop5_as_printed(x.symbols(), y.symbols());
    EXPECT_LE(printed.cost, static_cast<int>(k));
    EXPECT_GE(printed.cost, 0);
  }
}

}  // namespace
}  // namespace dbn
