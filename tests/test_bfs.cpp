#include <gtest/gtest.h>

#include "common/contract.hpp"
#include "debruijn/bfs.hpp"
#include "testing_util.hpp"

namespace dbn {
namespace {

using dbn::testing::DkParam;

class BfsGrid : public ::testing::TestWithParam<DkParam> {};

TEST_P(BfsGrid, GraphIsConnectedAndDiameterIsK) {
  const auto [d, k] = GetParam();
  if (Word::vertex_count(d, k) > 700) {
    GTEST_SKIP() << "all-pairs too large for this test";
  }
  for (Orientation o : {Orientation::Directed, Orientation::Undirected}) {
    const DeBruijnGraph g(d, k, o);
    const std::vector<int> dist = bfs_distances(g, 0);
    for (std::uint64_t v = 0; v < g.vertex_count(); ++v) {
      EXPECT_GE(dist[v], 0) << "unreachable vertex " << v;
      EXPECT_LE(dist[v], static_cast<int>(k));
    }
    // Section 2: the diameter of DG(d,k) is exactly k (both variants; the
    // distance from (0..0) to (1..1) is k).
    EXPECT_EQ(diameter(g), static_cast<int>(k));
  }
}

TEST_P(BfsGrid, ZeroToOnesDistanceIsK) {
  const auto [d, k] = GetParam();
  const DeBruijnGraph g(d, k, Orientation::Undirected);
  const Word ones(d, std::vector<Digit>(k, 1));
  const std::vector<int> dist = bfs_distances(g, 0);
  EXPECT_EQ(dist[ones.rank()], static_cast<int>(k));
}

INSTANTIATE_TEST_SUITE_P(SmallGrid, BfsGrid,
                         ::testing::ValuesIn(dbn::testing::small_grid()),
                         ::testing::PrintToStringParamName());

TEST(Bfs, ShortestPathEndpointsAndEdges) {
  const DeBruijnGraph g(2, 5, Orientation::Undirected);
  for (std::uint64_t s = 0; s < g.vertex_count(); s += 3) {
    for (std::uint64_t t = 0; t < g.vertex_count(); t += 5) {
      const auto path = bfs_shortest_path(g, s, t);
      ASSERT_FALSE(path.empty());
      EXPECT_EQ(path.front(), s);
      EXPECT_EQ(path.back(), t);
      const auto dist = bfs_distances(g, s);
      EXPECT_EQ(path.size(), static_cast<std::size_t>(dist[t]) + 1);
      for (std::size_t i = 0; i + 1 < path.size(); ++i) {
        EXPECT_TRUE(g.has_edge(path[i], path[i + 1]))
            << "non-edge in BFS path";
      }
    }
  }
}

TEST(Bfs, DirectedPathsUseLeftShiftsOnly) {
  const DeBruijnGraph g(3, 3, Orientation::Directed);
  const auto path = bfs_shortest_path(g, 5, 19);
  for (std::size_t i = 0; i + 1 < path.size(); ++i) {
    EXPECT_TRUE(g.has_edge(path[i], path[i + 1]));
  }
}

TEST(Bfs, AvoidingBlockedVertices) {
  const DeBruijnGraph g(2, 4, Orientation::Undirected);
  std::vector<bool> blocked(g.vertex_count(), false);
  // Block everything except vertices reachable through a narrow set.
  blocked[3] = blocked[7] = blocked[11] = true;
  const auto dist = bfs_distances_avoiding(g, 0, blocked);
  EXPECT_EQ(dist[3], -1);
  EXPECT_EQ(dist[7], -1);
  EXPECT_EQ(dist[11], -1);
  // Unblocked distances never beat the unconstrained BFS.
  const auto base = bfs_distances(g, 0);
  for (std::uint64_t v = 0; v < g.vertex_count(); ++v) {
    if (dist[v] >= 0) {
      EXPECT_GE(dist[v], base[v]);
    }
  }
}

TEST(Bfs, BlockedSourceRejected) {
  const DeBruijnGraph g(2, 3, Orientation::Undirected);
  std::vector<bool> blocked(g.vertex_count(), false);
  blocked[0] = true;
  EXPECT_THROW(bfs_distances_avoiding(g, 0, blocked), ContractViolation);
}

TEST(Bfs, SelfDistanceIsZero) {
  const DeBruijnGraph g(2, 4, Orientation::Undirected);
  const auto dist = bfs_distances(g, 9);
  EXPECT_EQ(dist[9], 0);
  EXPECT_EQ(bfs_shortest_path(g, 9, 9), (std::vector<std::uint64_t>{9}));
}

TEST(Bfs, EccentricityBoundedByDiameter) {
  const DeBruijnGraph g(2, 5, Orientation::Undirected);
  for (std::uint64_t v = 0; v < g.vertex_count(); ++v) {
    const int e = eccentricity(g, v);
    EXPECT_GE(e, 1);
    EXPECT_LE(e, 5);
  }
}

}  // namespace
}  // namespace dbn
