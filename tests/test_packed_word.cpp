// PackedWord <-> Word equivalence battery (ISSUE 6 satellite): the packed
// representation must agree with the vector-backed Word digit for digit —
// construction, rank round trips, both shifts, reversal, ordering and
// hashing — across every packable alphabet class (width-2 and width-4
// lanes), the d = 1 degenerate corner, and the adversarial word families
// the conformance fuzzer uses.
#include <algorithm>
#include <cstdint>
#include <functional>
#include <vector>

#include <gtest/gtest.h>

#include "common/contract.hpp"
#include "debruijn/packed_word.hpp"
#include "debruijn/word.hpp"
#include "testing_util.hpp"
#include "testkit/word_families.hpp"

namespace dbn {
namespace {

// The alphabet classes of the lane layout: d <= 4 packs at 2 bits per
// cell, d <= 16 at 4. k caps keep rank() inside uint64 where it is used.
struct PackedParam {
  std::uint32_t d;
  std::size_t k;

  friend std::ostream& operator<<(std::ostream& os, const PackedParam& p) {
    return os << "d" << p.d << "_k" << p.k;
  }
};

std::vector<PackedParam> packable_grid() {
  return {
      {1, 1}, {1, 2}, {1, 30}, {1, 64},           // degenerate alphabet
      {2, 1}, {2, 5}, {2, 8}, {2, 30}, {2, 63},   // width 2
      {3, 3}, {3, 20}, {3, 30},                   // width 2, non-power radix
      {4, 4}, {4, 16}, {4, 30},                   // width 2 at capacity
      {5, 7}, {8, 10}, {8, 21},                   // width 4
      {11, 5}, {16, 4}, {16, 15},                 // width 4 at capacity
  };
}

void expect_same_digits(const PackedWord& p, const Word& w) {
  ASSERT_EQ(p.radix(), w.radix());
  ASSERT_EQ(p.length(), w.length());
  for (std::size_t i = 0; i < w.length(); ++i) {
    ASSERT_EQ(p.digit(i), w.digit(i)) << "digit " << i;
  }
}

TEST(PackedWord, PackabilityMatchesTheLaneLayout) {
  // Width 2: d <= 4 up to k = 64; width 4: d <= 16 up to k = 32.
  for (std::uint32_t d = 1; d <= 4; ++d) {
    EXPECT_TRUE(PackedWord::packable(d, 64)) << d;
    EXPECT_FALSE(PackedWord::packable(d, 65)) << d;
  }
  for (std::uint32_t d = 5; d <= 16; ++d) {
    EXPECT_TRUE(PackedWord::packable(d, 32)) << d;
    EXPECT_FALSE(PackedWord::packable(d, 33)) << d;
  }
  EXPECT_FALSE(PackedWord::packable(17, 1));
  EXPECT_FALSE(PackedWord::packable(100, 4));
  EXPECT_THROW(PackedWord(17, 4), ContractViolation);
  EXPECT_THROW(PackedWord(2, 65), ContractViolation);
  EXPECT_THROW(PackedWord(2, 0), ContractViolation);
}

TEST(PackedWord, RoundTripsEveryVertexOfSmallNetworks) {
  // Exhaustive over every packable (d, k) with d^k small enough to
  // enumerate: rank -> packed -> word -> rank must be the identity and
  // agree with Word::from_rank digit for digit.
  for (const auto& p : std::vector<PackedParam>{
           {1, 5}, {2, 8}, {2, 10}, {3, 5}, {4, 4}, {5, 3}, {8, 3},
           {11, 2}, {16, 2}}) {
    const std::uint64_t n = Word::vertex_count(p.d, p.k);
    for (std::uint64_t r = 0; r < n; ++r) {
      const Word w = Word::from_rank(p.d, p.k, r);
      const PackedWord pw = PackedWord::from_rank(p.d, p.k, r);
      expect_same_digits(pw, w);
      EXPECT_EQ(pw.rank(), r);
      EXPECT_EQ(pw.to_word(), w);
      EXPECT_EQ(PackedWord::from_word(w), pw);
    }
  }
}

TEST(PackedWord, ShiftsMatchWordOnRandomVertices) {
  DBN_SEEDED_RNG(rng, 0x9a11ed);
  for (const PackedParam& p : packable_grid()) {
    SCOPED_TRACE(::testing::Message() << p);
    for (int trial = 0; trial < 40; ++trial) {
      const Word w = testing::random_word(rng, p.d, p.k);
      const PackedWord pw = PackedWord::from_word(w);
      const Digit a = static_cast<Digit>(rng.below(p.d));
      expect_same_digits(pw.left_shift(a), w.left_shift(a));
      expect_same_digits(pw.right_shift(a), w.right_shift(a));
      expect_same_digits(pw.reversed(), w.reversed());
      PackedWord pl = pw;
      pl.left_shift_inplace(a);
      EXPECT_EQ(pl, pw.left_shift(a));
      PackedWord pr = pw;
      pr.right_shift_inplace(a);
      EXPECT_EQ(pr, pw.right_shift(a));
      EXPECT_THROW(pl.left_shift_inplace(static_cast<Digit>(p.d)),
                   ContractViolation);
      EXPECT_THROW(pr.right_shift_inplace(static_cast<Digit>(p.d)),
                   ContractViolation);
    }
  }
}

TEST(PackedWord, ShiftWalksStayEquivalentOverLongSequences) {
  // A long random walk of interleaved shifts: the packed and vector
  // representations must track each other through every intermediate
  // state (catches any end-cell leakage in the lane shifts).
  DBN_SEEDED_RNG(rng, 0x5ea1);
  for (const PackedParam& p :
       std::vector<PackedParam>{{2, 63}, {3, 30}, {4, 32}, {16, 15}}) {
    SCOPED_TRACE(::testing::Message() << p);
    Word w = testing::random_word(rng, p.d, p.k);
    PackedWord pw = PackedWord::from_word(w);
    for (int step = 0; step < 300; ++step) {
      const Digit a = static_cast<Digit>(rng.below(p.d));
      if (rng.below(2) == 0) {
        w.left_shift_inplace(a);
        pw.left_shift_inplace(a);
      } else {
        w.right_shift_inplace(a);
        pw.right_shift_inplace(a);
      }
      expect_same_digits(pw, w);
    }
  }
}

TEST(PackedWord, SetDigitMatchesAndValidates) {
  DBN_SEEDED_RNG(rng, 0xd161);
  for (const PackedParam& p : packable_grid()) {
    Word w = testing::random_word(rng, p.d, p.k);
    PackedWord pw = PackedWord::from_word(w);
    const std::size_t i = rng.below(p.k);
    const Digit v = static_cast<Digit>(rng.below(p.d));
    pw.set_digit(i, v);
    std::vector<Digit> digits;
    for (std::size_t j = 0; j < w.length(); ++j) {
      digits.push_back(j == i ? v : w.digit(j));
    }
    expect_same_digits(pw, Word(p.d, digits));
    EXPECT_THROW(pw.set_digit(i, static_cast<Digit>(p.d)), ContractViolation);
  }
}

TEST(PackedWord, OrderingAndHashMatchWord) {
  DBN_SEEDED_RNG(rng, 0x07de7);
  for (const PackedParam& p :
       std::vector<PackedParam>{{2, 12}, {3, 9}, {4, 30}, {16, 7}}) {
    SCOPED_TRACE(::testing::Message() << p);
    std::vector<Word> words;
    std::vector<PackedWord> packed;
    for (int i = 0; i < 64; ++i) {
      words.push_back(testing::random_word(rng, p.d, p.k));
      packed.push_back(PackedWord::from_word(words.back()));
      // Equal vertices hash equally across representations, so mixed
      // tables behave.
      EXPECT_EQ(std::hash<PackedWord>{}(packed.back()),
                std::hash<Word>{}(words.back()));
    }
    std::sort(words.begin(), words.end());
    std::sort(packed.begin(), packed.end());
    for (std::size_t i = 0; i < words.size(); ++i) {
      expect_same_digits(packed[i], words[i]);
    }
    EXPECT_EQ(packed[0] == packed[0], true);
    EXPECT_EQ(packed[0] <=> packed[0], std::strong_ordering::equal);
  }
}

TEST(PackedWord, DegenerateOneLetterAlphabet) {
  // d = 1: a single vertex per k; every shift is the identity.
  for (const std::size_t k : {1u, 2u, 7u, 30u, 64u}) {
    const PackedWord p(1, k);
    EXPECT_EQ(p.rank(), 0u);
    EXPECT_EQ(p.left_shift(0), p);
    EXPECT_EQ(p.right_shift(0), p);
    EXPECT_EQ(p.reversed(), p);
    expect_same_digits(p, Word::zero(1, k));
    EXPECT_EQ(PackedWord::from_rank(1, k, 0), p);
    EXPECT_THROW(PackedWord::from_rank(1, k, 1), ContractViolation);
  }
}

TEST(PackedWord, AdversarialFamiliesRoundTripAndShift) {
  // The fuzzer's boundary words (periodic, Lyndon, border-rich, ...) must
  // survive pack -> shift -> unpack bit for bit, both lane widths.
  DBN_SEEDED_RNG(rng, 0xfa317);
  for (const PackedParam& p :
       std::vector<PackedParam>{{2, 30}, {2, 64}, {3, 21}, {4, 17},
                                {8, 30}, {16, 32}}) {
    SCOPED_TRACE(::testing::Message() << p);
    for (const testkit::WordFamily family : testkit::kAllWordFamilies) {
      SCOPED_TRACE(testkit::family_name(family));
      for (int trial = 0; trial < 10; ++trial) {
        const Word w = testkit::sample_word(rng, p.d, p.k, family);
        const PackedWord pw = PackedWord::from_word(w);
        expect_same_digits(pw, w);
        EXPECT_EQ(pw.to_word(), w);
        const Digit a = static_cast<Digit>(rng.below(p.d));
        expect_same_digits(pw.left_shift(a), w.left_shift(a));
        expect_same_digits(pw.right_shift(a), w.right_shift(a));
      }
    }
  }
}

}  // namespace
}  // namespace dbn
