// BatchRouteEngine: the parallel batch path must be bit-for-bit identical
// to the sequential engines it wraps — for every backend, every thread
// count and every cache configuration.
#include <gtest/gtest.h>

#include <vector>

#include "common/contract.hpp"
#include "common/rng.hpp"
#include "common/thread_pool.hpp"
#include "core/batch_route_engine.hpp"
#include "core/distance.hpp"
#include "core/route_engine.hpp"
#include "core/routers.hpp"
#include "testing_util.hpp"

namespace dbn {
namespace {

std::vector<RouteQuery> all_pairs(std::uint32_t d, std::size_t k) {
  const std::uint64_t n = Word::vertex_count(d, k);
  std::vector<RouteQuery> queries;
  queries.reserve(n * n);
  for (std::uint64_t i = 0; i < n; ++i) {
    for (std::uint64_t j = 0; j < n; ++j) {
      queries.push_back(
          RouteQuery{Word::from_rank(d, k, i), Word::from_rank(d, k, j)});
    }
  }
  return queries;
}

std::vector<RouteQuery> random_queries(Rng& rng, std::uint32_t d,
                                       std::size_t k, std::size_t count) {
  std::vector<RouteQuery> queries;
  queries.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    queries.push_back(RouteQuery{testing::random_word(rng, d, k),
                                 testing::random_word(rng, d, k)});
  }
  return queries;
}

TEST(ThreadPool, CoversEveryIndexExactlyOnce) {
  for (const std::size_t threads : {std::size_t{1}, std::size_t{3}}) {
    ThreadPool pool(threads);
    EXPECT_EQ(pool.thread_count(), threads);
    std::vector<std::atomic<int>> seen(1000);
    pool.parallel_for(seen.size(), 7,
                      [&seen](std::size_t begin, std::size_t end,
                              std::size_t worker) {
                        ASSERT_LT(worker, 3u);
                        for (std::size_t i = begin; i < end; ++i) {
                          seen[i].fetch_add(1);
                        }
                      });
    for (const auto& count : seen) {
      EXPECT_EQ(count.load(), 1);
    }
  }
}

TEST(ThreadPool, PropagatesTheFirstException) {
  ThreadPool pool(4);
  EXPECT_THROW(
      pool.parallel_for(100, 1,
                        [](std::size_t begin, std::size_t, std::size_t) {
                          if (begin == 42) {
                            throw std::runtime_error("chunk 42");
                          }
                        }),
      std::runtime_error);
  // The pool survives a failed loop and can run again.
  std::atomic<std::size_t> total{0};
  pool.parallel_for(64, 8,
                    [&total](std::size_t begin, std::size_t end, std::size_t) {
                      total.fetch_add(end - begin);
                    });
  EXPECT_EQ(total.load(), 64u);
}

// Determinism on the full small grid: the batch engine's bidirectional
// backend must reproduce the sequential BidirectionalRouteEngine exactly,
// pair by pair, for all d^k * d^k pairs of DG(2,4).
TEST(BatchRouteEngine, MatchesSequentialEngineOnFullSmallGrid) {
  const std::uint32_t d = 2;
  const std::size_t k = 4;
  const std::vector<RouteQuery> queries = all_pairs(d, k);
  BatchRouteEngine batch(d, k,
                         BatchRouteOptions{.threads = 4, .chunk = 16});
  const std::vector<RoutingPath> paths = batch.route_batch(queries);
  ASSERT_EQ(paths.size(), queries.size());
  BidirectionalRouteEngine sequential(k);
  RoutingPath expected;
  for (std::size_t i = 0; i < queries.size(); ++i) {
    sequential.route_into(queries[i].x, queries[i].y, WildcardMode::Concrete,
                          expected);
    EXPECT_EQ(paths[i], expected)
        << "X=" << queries[i].x.to_string()
        << " Y=" << queries[i].y.to_string();
    EXPECT_EQ(paths[i].apply(queries[i].x), queries[i].y);
  }
}

// Thread-count sweep: 1, 2 and 8 threads must give identical batches
// (and identical distances), with or without the memo cache.
TEST(BatchRouteEngine, ThreadCountSweepIsDeterministic) {
  const std::uint32_t d = 3;
  const std::size_t k = 6;
  Rng rng(20260806);
  const std::vector<RouteQuery> queries = random_queries(rng, d, k, 600);
  BatchRouteEngine reference(d, k, BatchRouteOptions{.threads = 1});
  const std::vector<RoutingPath> expected = reference.route_batch(queries);
  const std::vector<int> expected_dist = reference.distance_batch(queries);
  for (const std::size_t threads : {std::size_t{2}, std::size_t{8}}) {
    for (const std::size_t cache : {std::size_t{0}, std::size_t{128}}) {
      BatchRouteEngine engine(
          d, k,
          BatchRouteOptions{
              .threads = threads, .chunk = 32, .cache_entries = cache});
      EXPECT_EQ(engine.thread_count(), threads);
      EXPECT_EQ(engine.route_batch(queries), expected)
          << "threads=" << threads << " cache=" << cache;
      EXPECT_EQ(engine.distance_batch(queries), expected_dist);
    }
  }
}

// Every backend agrees with its sequential counterpart and with the exact
// distances.
TEST(BatchRouteEngine, BackendsMatchTheirSequentialCounterparts) {
  const std::uint32_t d = 2;
  const std::size_t k = 5;
  Rng rng(99);
  const std::vector<RouteQuery> queries = random_queries(rng, d, k, 200);
  for (const BatchBackend backend :
       {BatchBackend::Alg1Directed, BatchBackend::BidiEngine,
        BatchBackend::BidiSuffixTree, BatchBackend::CompiledTable}) {
    BatchRouteEngine engine(
        d, k, BatchRouteOptions{.backend = backend, .threads = 2, .chunk = 8});
    const std::vector<RoutingPath> paths = engine.route_batch(queries);
    const std::vector<int> dists = engine.distance_batch(queries);
    for (std::size_t i = 0; i < queries.size(); ++i) {
      const Word& x = queries[i].x;
      const Word& y = queries[i].y;
      EXPECT_EQ(paths[i].apply(x), y) << batch_backend_name(backend);
      const int exact = backend == BatchBackend::Alg1Directed
                            ? directed_distance(x, y)
                            : undirected_distance(x, y);
      EXPECT_EQ(static_cast<int>(paths[i].length()), exact)
          << batch_backend_name(backend);
      EXPECT_EQ(dists[i], exact) << batch_backend_name(backend);
    }
  }
}

// Cache-hit correctness: a batch of repeated pairs must hit the cache and
// still return the exact same paths as a cold engine.
TEST(BatchRouteEngine, CacheHitsReturnIdenticalPaths) {
  const std::uint32_t d = 2;
  const std::size_t k = 8;
  Rng rng(7);
  // 16 distinct flows repeated 64 times each.
  std::vector<RouteQuery> flows = random_queries(rng, d, k, 16);
  std::vector<RouteQuery> queries;
  for (int repeat = 0; repeat < 64; ++repeat) {
    queries.insert(queries.end(), flows.begin(), flows.end());
  }
  BatchRouteEngine cold(d, k, BatchRouteOptions{.threads = 2});
  BatchRouteEngine cached(
      d, k,
      BatchRouteOptions{.threads = 2, .cache_entries = 256, .cache_shards = 8});
  ASSERT_TRUE(cached.cache_enabled());
  const std::vector<RoutingPath> expected = cold.route_batch(queries);
  const std::vector<RoutingPath> actual = cached.route_batch(queries);
  EXPECT_EQ(actual, expected);
  const BatchStats& stats = cached.last_stats();
  EXPECT_EQ(stats.queries, queries.size());
  EXPECT_EQ(stats.cache_lookups, queries.size());
  // Every pair after its first computation can hit; concurrent first
  // computations of the same flow may each miss, so bound from below by a
  // comfortable margin rather than the exact 16 * 63.
  EXPECT_GE(stats.cache_hits, queries.size() / 2);
  EXPECT_LT(stats.cache_hits, queries.size());
}

// A second batch through the same warmed cache is served from it.
TEST(BatchRouteEngine, WarmCacheServesRepeatBatches) {
  const std::uint32_t d = 2;
  const std::size_t k = 6;
  Rng rng(11);
  const std::vector<RouteQuery> queries = random_queries(rng, d, k, 32);
  BatchRouteEngine engine(
      d, k, BatchRouteOptions{.threads = 1, .cache_entries = 4096});
  const std::vector<RoutingPath> first = engine.route_batch(queries);
  const std::vector<RoutingPath> second = engine.route_batch(queries);
  EXPECT_EQ(first, second);
  // With 4096 direct-mapped slots for 32 pairs, collisions are unlikely
  // but possible; almost all of the second batch must be hits.
  EXPECT_GE(engine.last_stats().cache_hits, queries.size() - 4);
}

TEST(BatchRouteEngine, RouteOneMatchesBatchAndValidatesQueries) {
  const std::uint32_t d = 2;
  const std::size_t k = 4;
  BatchRouteEngine engine(d, k, BatchRouteOptions{.cache_entries = 16});
  const Word x(2, {0, 1, 1, 0});
  const Word y(2, {1, 0, 0, 1});
  const RoutingPath path = engine.route_one(x, y);
  // The packed kernel may pick a different Theorem 2 witness than the
  // scalar scan, so compare by optimality and validity, not hop-for-hop.
  EXPECT_EQ(path.length(), route_bidirectional_mp(x, y).length());
  EXPECT_EQ(path.apply(x), y);
  // Cached second call returns the identical path.
  EXPECT_EQ(engine.route_one(x, y), path);
  EXPECT_THROW(engine.route_one(Word(2, {0, 1, 1}), y), ContractViolation);
  EXPECT_THROW(engine.route_one(Word(3, {0, 1, 1, 2}), y), ContractViolation);
  EXPECT_THROW(engine.route_batch({RouteQuery{Word(2, {0, 1}), y}}),
               ContractViolation);
}

TEST(BatchRouteEngine, WildcardModeFlowsThroughToThePaths) {
  const std::uint32_t d = 2;
  const std::size_t k = 5;
  Rng rng(5);
  const std::vector<RouteQuery> queries = random_queries(rng, d, k, 100);
  BatchRouteEngine engine(
      d, k,
      BatchRouteOptions{.threads = 2,
                        .wildcard_mode = WildcardMode::Wildcards});
  const std::vector<RoutingPath> paths = engine.route_batch(queries);
  bool saw_wildcard = false;
  for (std::size_t i = 0; i < queries.size(); ++i) {
    const RoutingPath expected = route_bidirectional_mp(
        queries[i].x, queries[i].y, WildcardMode::Wildcards);
    // Same optimal length; the witness (and so the wildcard placement)
    // may differ between the packed and scalar kernels.
    EXPECT_EQ(paths[i].length(), expected.length());
    EXPECT_EQ(paths[i].apply(queries[i].x), queries[i].y);
    saw_wildcard = saw_wildcard || paths[i].has_wildcards();
  }
  // The mode must actually reach the per-worker engines: across 100
  // random pairs at least one optimal plan has an arbitrary digit.
  EXPECT_TRUE(saw_wildcard);
}

}  // namespace
}  // namespace dbn
