// End-to-end integration: the whole stack exercised in one choreography,
// through the umbrella header (which also proves it compiles cleanly).
#include <gtest/gtest.h>

#include <algorithm>

#include "dbn.hpp"
#include "testing_util.hpp"

namespace dbn {
namespace {

TEST(Integration, FullStackChoreography) {
  using namespace dbn::net;
  constexpr std::uint32_t d = 2;
  constexpr std::size_t k = 6;
  const DeBruijnGraph g(d, k, Orientation::Undirected);
  Rng rng(20260707);

  // 1. Route a batch three ways; all agree with the distance function.
  BidirectionalRouteEngine engine(k);
  RoutingPath engine_path;
  std::vector<Transfer> transfers;
  for (int i = 0; i < 50; ++i) {
    const Word x = testing::random_word(rng, d, k);
    const Word y = testing::random_word(rng, d, k);
    const RoutingPath a = route_bidirectional_mp(x, y);
    const RoutingPath b = route_bidirectional_suffix_tree(x, y);
    const RoutingPath c = route_bidirectional_suffix_automaton(x, y);
    engine.route_into(x, y, WildcardMode::Concrete, engine_path);
    const int dist = undirected_distance(x, y);
    ASSERT_EQ(static_cast<int>(a.length()), dist);
    ASSERT_EQ(b.length(), a.length());
    ASSERT_EQ(c.length(), a.length());
    ASSERT_EQ(engine_path.length(), a.length());
    ASSERT_EQ(a.apply(x), y);
    transfers.push_back({x.rank(), y.rank()});
  }

  // 2. Encode/decode every message that will ride the network.
  for (const Transfer& t : transfers) {
    const Word x = g.word(t.source);
    const Word y = g.word(t.destination);
    const Message m(ControlCode::Data, x, y,
                    route_bidirectional_suffix_tree(x, y));
    const auto decoded = decode(encode(m));
    ASSERT_TRUE(decoded.has_value());
    ASSERT_EQ(*decoded, m);
  }

  // 3. Break a site; the reliable protocol still completes every transfer
  //    whose endpoints survive.
  const auto failed = random_fault_set(g, 1, rng);
  std::vector<Transfer> live;
  for (const Transfer& t : transfers) {
    if (!failed[t.source] && !failed[t.destination]) {
      live.push_back(t);
    }
  }
  SimConfig config;
  config.radix = d;
  config.k = k;
  config.record_traces = true;
  Simulator sim(config);
  for (std::uint64_t v = 0; v < g.vertex_count(); ++v) {
    if (failed[v]) {
      sim.fail_node(v);
    }
  }
  const FaultAwareRouter fault_router(g, failed);
  const ReliableReport report = run_reliable(
      sim, live,
      [&](const Word& x, const Word& y, int attempt) {
        return attempt == 0 ? route_bidirectional_mp(x, y)
                            : fault_router.route(x, y).value_or(RoutingPath{});
      });
  EXPECT_EQ(report.completed, live.size());
  EXPECT_EQ(report.abandoned, 0u);

  // 4. Broadcast from the first live site; all-port completion equals the
  //    root's eccentricity.
  std::uint64_t root = 0;
  while (failed[root]) {
    ++root;
  }
  const BroadcastTree tree = build_broadcast_tree(g, root);
  EXPECT_EQ(schedule_broadcast(tree, PortModel::AllPort).completion,
            eccentricity(g, root));
  EXPECT_EQ(schedule_reduce(tree, PortModel::AllPort).completion,
            eccentricity(g, root));

  // 5. Sort one value per site on the embedded array.
  std::vector<std::uint64_t> values(g.vertex_count());
  for (auto& v : values) {
    v = rng.below(512);
  }
  const SortEmulationResult sorted = odd_even_transposition_sort(d, k, values);
  EXPECT_TRUE(std::is_sorted(sorted.sorted.begin(), sorted.sorted.end()));

  // 6. The Kautz sibling routes with the same machinery.
  const KautzGraph kautz(d, k);
  const Word kx = kautz.word(rng.below(kautz.vertex_count()));
  const Word ky = kautz.word(rng.below(kautz.vertex_count()));
  const RoutingPath kautz_path = kautz_route(kautz, kx, ky);
  EXPECT_EQ(static_cast<int>(kautz_path.length()),
            kautz_directed_distance(kautz, kx, ky));
}

}  // namespace
}  // namespace dbn
