#include <gtest/gtest.h>

#include "common/contract.hpp"
#include "debruijn/bfs.hpp"
#include "debruijn/generalized.hpp"
#include "debruijn/graph.hpp"
#include "testing_util.hpp"

namespace dbn {
namespace {

TEST(GeneralizedDeBruijn, CoincidesWithDirectedDGWhenNIsAPower) {
  for (const auto& [d, k] : std::vector<std::pair<std::uint32_t, std::size_t>>{
           {2, 5}, {3, 3}, {5, 2}}) {
    const std::uint64_t n = Word::vertex_count(d, k);
    const GeneralizedDeBruijn gb(n, d);
    const DeBruijnGraph dg(d, k, Orientation::Directed);
    for (std::uint64_t v = 0; v < n; ++v) {
      EXPECT_EQ(gb.out_neighbors(v), dg.neighbors(v)) << "v=" << v;
    }
    EXPECT_EQ(gb.diameter(), static_cast<int>(k));
  }
}

TEST(GeneralizedDeBruijn, ImaseItohDiameterBoundHolds) {
  // Theorem (Imase-Itoh 1981): diameter(GB(n,d)) <= ceil(log_d n).
  for (std::uint32_t d : {2u, 3u, 4u}) {
    for (std::uint64_t n = 2; n <= 200; n += 7) {
      const GeneralizedDeBruijn gb(n, d);
      const int diam = gb.diameter();
      ASSERT_GE(diam, 0) << "GB(" << n << "," << d << ") not connected";
      int ceil_log = 0;
      std::uint64_t power = 1;
      while (power < n) {
        power *= d;
        ++ceil_log;
      }
      EXPECT_LE(diam, ceil_log) << "GB(" << n << "," << d << ")";
      EXPECT_GE(diam, directed_diameter_lower_bound(n, d))
          << "GB(" << n << "," << d << ")";
    }
  }
}

TEST(GeneralizedDeBruijn, LowerBoundExamples) {
  // 1 + d + ... + d^D >= n. d=2: n=4 -> D=2 (1+2+4=7 >= 4; 1+2=3 < 4).
  EXPECT_EQ(directed_diameter_lower_bound(1, 2), 0);
  EXPECT_EQ(directed_diameter_lower_bound(3, 2), 1);
  EXPECT_EQ(directed_diameter_lower_bound(4, 2), 2);
  EXPECT_EQ(directed_diameter_lower_bound(7, 2), 2);
  EXPECT_EQ(directed_diameter_lower_bound(8, 2), 3);
  EXPECT_EQ(directed_diameter_lower_bound(1000, 10), 3);
}

TEST(GeneralizedDeBruijn, DeBruijnDiameterIsWithinOneOfTheLowerBound) {
  // The paper's "nearly optimal" claim (via [4]): diameter k vs the Moore
  // bound for n = d^k vertices of out-degree d.
  for (const auto& [d, k] : dbn::testing::small_grid()) {
    const std::uint64_t n = Word::vertex_count(d, k);
    const int bound = directed_diameter_lower_bound(n, d);
    EXPECT_GE(static_cast<int>(k), bound);
    EXPECT_LE(static_cast<int>(k), bound + 1) << "d=" << d << " k=" << k;
  }
}

TEST(GeneralizedDeBruijn, RejectsBadArguments) {
  EXPECT_THROW(GeneralizedDeBruijn(0, 2), ContractViolation);
  EXPECT_THROW(GeneralizedDeBruijn(10, 1), ContractViolation);
  const GeneralizedDeBruijn gb(10, 2);
  EXPECT_THROW(gb.out_neighbors(10), ContractViolation);
}

}  // namespace
}  // namespace dbn
