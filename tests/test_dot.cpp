#include <gtest/gtest.h>

#include "common/contract.hpp"
#include "debruijn/dot.hpp"
#include "testing_util.hpp"

namespace dbn {
namespace {

std::size_t count_occurrences(const std::string& haystack,
                              const std::string& needle) {
  std::size_t count = 0;
  for (std::size_t pos = haystack.find(needle); pos != std::string::npos;
       pos = haystack.find(needle, pos + needle.size())) {
    ++count;
  }
  return count;
}

TEST(Dot, DirectedExportHasAllArcs) {
  const DeBruijnGraph g(2, 3, Orientation::Directed);
  const std::string dot = to_dot(g);
  EXPECT_NE(dot.find("digraph"), std::string::npos);
  // N*d = 16 arcs.
  EXPECT_EQ(count_occurrences(dot, " -> "), 16u);
  EXPECT_NE(dot.find("\"000\""), std::string::npos);
  EXPECT_NE(dot.find("\"111\""), std::string::npos);
  // Self-loop at the constant words.
  EXPECT_NE(dot.find("\"000\" -> \"000\""), std::string::npos);
}

TEST(Dot, UndirectedExportDeduplicatesEdges) {
  const DeBruijnGraph g(2, 3, Orientation::Undirected);
  const std::string dot = to_dot(g);
  EXPECT_NE(dot.find("graph"), std::string::npos);
  EXPECT_EQ(dot.find("digraph"), std::string::npos);
  // The undirected DG(2,3) has 13 edges (Figure 1(b)).
  EXPECT_EQ(count_occurrences(dot, " -- "), 13u);
}

TEST(Dot, RankLabelsWhenRequested) {
  const DeBruijnGraph g(2, 2, Orientation::Directed);
  const std::string dot = to_dot(g, /*word_labels=*/false);
  EXPECT_EQ(dot.find('"'), std::string::npos);
  EXPECT_NE(dot.find("0 -> 1"), std::string::npos);
}

TEST(Dot, GuardsHugeGraphs) {
  const DeBruijnGraph g(2, 20, Orientation::Directed);
  EXPECT_THROW(to_dot(g), ContractViolation);
}

}  // namespace
}  // namespace dbn
