// Theorem 2 witness structure: every path the bi-directional routers emit
// must be the trivial all-left path or decompose into one of the paper's
// three-block forms L^{s-1} R^{k-θ} L^{k-t} / R^{k-s} L^{k-θ} R^{t-1},
// with the claimed overlap block of X actually present in Y.
#include <gtest/gtest.h>

#include "core/routers.hpp"
#include "testing_util.hpp"
#include "testkit/conformance.hpp"

namespace dbn {
namespace {

using dbn::testing::DkParam;

class PathShapeGrid : public ::testing::TestWithParam<DkParam> {};

TEST_P(PathShapeGrid, BidirectionalPathsAreThreeBlockAllPairs) {
  const auto [d, k] = GetParam();
  const std::uint64_t n = Word::vertex_count(d, k);
  for (std::uint64_t xr = 0; xr < n; ++xr) {
    const Word x = Word::from_rank(d, k, xr);
    for (std::uint64_t yr = 0; yr < n; ++yr) {
      const Word y = Word::from_rank(d, k, yr);
      for (const auto& [name, path] :
           {std::pair{"alg2-mp", route_bidirectional_mp(x, y)},
            std::pair{"alg4-st", route_bidirectional_suffix_tree(x, y)},
            std::pair{"alg4-sam", route_bidirectional_suffix_automaton(x, y)}}) {
        EXPECT_TRUE(testkit::shape_matches_theorem2(x, y, path))
            << name << " X=" << x.to_string() << " Y=" << y.to_string()
            << " path=" << path.to_string();
        // At most three maximal runs of shift types, by construction.
        EXPECT_LE(testkit::shift_runs(path).runs.size(), 3u)
            << name << " X=" << x.to_string() << " Y=" << y.to_string();
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(SmallGrid, PathShapeGrid,
                         ::testing::ValuesIn(dbn::testing::small_grid()),
                         ::testing::PrintToStringParamName());

INSTANTIATE_TEST_SUITE_P(DegenerateGrid, PathShapeGrid,
                         ::testing::ValuesIn(dbn::testing::degenerate_grid()),
                         ::testing::PrintToStringParamName());

TEST(PathShapes, RejectsNonTheoremPaths) {
  // A zig-zag L R L R can never be a Theorem 2 witness (four runs).
  const Word x(2, {0, 1, 0, 1});
  RoutingPath zigzag;
  zigzag.push({ShiftType::Left, 0});
  zigzag.push({ShiftType::Right, 0});
  zigzag.push({ShiftType::Left, 0});
  zigzag.push({ShiftType::Right, 0});
  EXPECT_FALSE(testkit::shape_matches_theorem2(x, x, zigzag));
  // An empty path is a witness exactly for X == Y.
  EXPECT_TRUE(testkit::shape_matches_theorem2(x, x, RoutingPath{}));
  EXPECT_FALSE(
      testkit::shape_matches_theorem2(x, Word(2, {1, 1, 1, 1}), RoutingPath{}));
}

TEST(PathShapes, ClassifiesThePaperExampleShapes) {
  // D((0,0,0), (1,1,1)) = 3 uses the trivial path L L L inserting y.
  const Word zeros(2, {0, 0, 0});
  const Word ones(2, {1, 1, 1});
  const RoutingPath trivial = route_bidirectional_mp(zeros, ones);
  ASSERT_EQ(trivial.length(), 3u);
  EXPECT_TRUE(testkit::shape_matches_theorem2(zeros, ones, trivial));
  // A pure right-shift path: Y is X shifted right, X = (0,1,1), Y = (0,0,1).
  const Word x(2, {0, 1, 1});
  const Word y(2, {0, 0, 1});
  const RoutingPath path = route_bidirectional_mp(x, y);
  EXPECT_TRUE(testkit::shape_matches_theorem2(x, y, path));
}

}  // namespace
}  // namespace dbn
