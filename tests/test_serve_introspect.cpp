// Introspection-plane tests: the Introspect wire extension, the
// introspect/1 probe document, the exact accounting identity under a
// concurrent flood (the reconcile guarantee the probe exists to give),
// deterministic trace sampling, and the slow-request log's boundaries.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "common/rng.hpp"
#include "common/schema.hpp"
#include "debruijn/word.hpp"
#include "obs/json.hpp"
#include "serve/introspect.hpp"
#include "serve/protocol.hpp"
#include "serve/server.hpp"

namespace {

using namespace dbn;
using namespace dbn::serve;

Word random_word(Rng& rng, std::uint32_t d, std::size_t k) {
  std::vector<Digit> digits(k);
  for (auto& digit : digits) {
    digit = static_cast<Digit>(rng.below(d));
  }
  return Word(d, std::move(digits));
}

std::vector<Response> decode_stream(std::string_view bytes) {
  FrameReader reader;
  reader.feed(bytes);
  std::vector<Response> out;
  std::string payload;
  while (reader.next(payload) == FrameReader::Result::Frame) {
    const DecodedResponse decoded = decode_response(payload);
    EXPECT_EQ(decoded.error, DecodeError::None);
    out.push_back(decoded.response);
  }
  return out;
}

struct Client {
  explicit Client(RouteServer& server) {
    conn = server.connect([this](std::string_view frames) {
      const std::lock_guard<std::mutex> lock(mutex);
      bytes.append(frames);
    });
  }
  std::string snapshot() {
    const std::lock_guard<std::mutex> lock(mutex);
    return bytes;
  }
  std::vector<Response> responses() { return decode_stream(snapshot()); }

  std::mutex mutex;
  std::string bytes;
  std::shared_ptr<Connection> conn;
};

/// The ServeStats identity every snapshot must satisfy (see server.hpp).
void expect_identity(const IntrospectSnapshot& snap, const char* when) {
  const ServeStats& s = snap.stats;
  EXPECT_EQ(s.requests,
            s.responses_ok + s.rejected_overload + s.rejected_draining +
                (s.rejected_bad_request - s.rejected_undecodable) +
                snap.queue_depth + snap.inflight)
      << when << ": requests=" << s.requests << " ok=" << s.responses_ok
      << " overload=" << s.rejected_overload
      << " draining=" << s.rejected_draining
      << " bad=" << s.rejected_bad_request
      << " undecodable=" << s.rejected_undecodable
      << " queue=" << snap.queue_depth << " inflight=" << snap.inflight;
}

// --- wire extension ---------------------------------------------------------

TEST(ServeIntrospect, IntrospectRequestRoundTripsOnTheWire) {
  std::string frame;
  encode_control_request(RequestType::Introspect, 77, frame);
  FrameReader reader;
  reader.feed(frame);
  std::string payload;
  ASSERT_EQ(reader.next(payload), FrameReader::Result::Frame);
  const DecodedRequest decoded = decode_request(payload);
  ASSERT_EQ(decoded.error, DecodeError::None);
  EXPECT_EQ(decoded.request.type, RequestType::Introspect);
  EXPECT_EQ(decoded.request.id, 77u);
}

TEST(ServeIntrospect, ProbeAnswersInlineWithIntrospectDocument) {
  ServeConfig config;
  config.d = 2;
  config.k = 8;
  config.trace_sample = 16;
  config.trace_seed = 7;
  config.slow_us = 250.0;
  RouteServer server(config);
  Client client(server);

  Rng rng(42);
  std::string stream;
  for (std::uint64_t i = 0; i < 20; ++i) {
    encode_route_request(i, random_word(rng, config.d, config.k),
                         random_word(rng, config.d, config.k), stream);
  }
  ASSERT_TRUE(client.conn->feed(stream));
  server.wait_drained();

  std::string probe;
  encode_control_request(RequestType::Introspect, 999, probe);
  ASSERT_TRUE(client.conn->feed(probe));
  const std::vector<Response> responses = client.responses();
  ASSERT_FALSE(responses.empty());
  const Response& answer = responses.back();
  EXPECT_EQ(answer.type, RequestType::Introspect);
  EXPECT_EQ(answer.id, 999u);
  EXPECT_EQ(answer.status, Status::Ok);

  const auto doc = obs::json_parse(answer.body);
  ASSERT_TRUE(doc.has_value());
  EXPECT_EQ(doc->string_at("schema"), schema::kIntrospect);
  const obs::JsonValue* cfg = doc->find("config");
  ASSERT_NE(cfg, nullptr);
  EXPECT_EQ(cfg->number_at("d"), 2.0);
  EXPECT_EQ(cfg->number_at("k"), 8.0);
  EXPECT_EQ(cfg->number_at("trace_sample"), 16.0);
  EXPECT_EQ(cfg->number_at("trace_seed"), 7.0);
  EXPECT_EQ(cfg->number_at("slow_us"), 250.0);
  const obs::JsonValue* stats = doc->find("stats");
  ASSERT_NE(stats, nullptr);
  EXPECT_EQ(stats->number_at("responses_ok"), 20.0);
  EXPECT_GE(doc->number_at("uptime_us"), 0.0);
  // The probed snapshot excludes the probe itself: with everything routed
  // and drained, the embedded counters balance with zero in flight.
  EXPECT_EQ(stats->number_at("requests"),
            stats->number_at("responses_ok") +
                stats->number_at("rejected_overload") +
                stats->number_at("rejected_draining"));
  EXPECT_EQ(doc->number_at("queue_depth"), 0.0);
  EXPECT_EQ(doc->number_at("inflight"), 0.0);
  const obs::JsonValue* conns = doc->find("connections");
  ASSERT_NE(conns, nullptr);
  ASSERT_EQ(conns->items.size(), 1u);
  EXPECT_EQ(conns->items[0].number_at("requests"), 21.0);  // 20 + probe
  EXPECT_GT(doc->number_at("fairness"), 0.0);
  // The embedded metrics document is a verbatim metrics/1 snapshot.
  const obs::JsonValue* metrics = doc->find("metrics");
  ASSERT_NE(metrics, nullptr);
  EXPECT_EQ(metrics->string_at("schema"), schema::kMetrics);
  server.wait_drained();
}

// --- the reconcile guarantee ------------------------------------------------

TEST(ServeIntrospect, SnapshotIdentityHoldsMidFloodAndPostDrain) {
  // Two clients flood routed work through a deliberately tight queue while
  // a prober thread snapshots as fast as it can. EVERY snapshot — not just
  // the final one — must satisfy the accounting identity exactly; that is
  // the acceptance bar for serving a live probe without stopping the
  // dispatcher. After the drain, the same identity must close with empty
  // queue and nothing in flight.
  ServeConfig config;
  config.d = 2;
  config.k = 12;
  config.queue_capacity = 64;  // tight: the flood must shed
  config.max_batch = 16;
  RouteServer server(config);

  constexpr std::uint64_t kPerClient = 4000;
  std::atomic<bool> done{false};
  std::atomic<std::uint64_t> probes{0};
  std::thread prober([&] {
    while (!done.load(std::memory_order_acquire)) {
      const IntrospectSnapshot snap = server.introspect();
      expect_identity(snap, "mid-flood");
      probes.fetch_add(1, std::memory_order_relaxed);
    }
  });

  std::vector<std::thread> clients;
  std::vector<std::unique_ptr<Client>> handles;
  for (int c = 0; c < 2; ++c) {
    handles.push_back(std::make_unique<Client>(server));
  }
  for (int c = 0; c < 2; ++c) {
    clients.emplace_back([&, c] {
      Client& client = *handles[static_cast<std::size_t>(c)];
      Rng rng(1000 + c);
      std::string frame;
      for (std::uint64_t i = 0; i < kPerClient; ++i) {
        frame.clear();
        encode_route_request(i, random_word(rng, config.d, config.k),
                             random_word(rng, config.d, config.k), frame);
        ASSERT_TRUE(client.conn->feed(frame));
      }
    });
  }
  for (std::thread& t : clients) {
    t.join();
  }
  server.wait_drained();
  done.store(true, std::memory_order_release);
  prober.join();
  EXPECT_GT(probes.load(), 0u);

  const IntrospectSnapshot final_snap = server.introspect();
  expect_identity(final_snap, "post-drain");
  EXPECT_EQ(final_snap.queue_depth, 0u);
  EXPECT_EQ(final_snap.inflight, 0u);
  EXPECT_EQ(final_snap.stats.requests, 2 * kPerClient);
  EXPECT_EQ(final_snap.stats.responses_ok +
                final_snap.stats.rejected_overload,
            2 * kPerClient);
  // Both clients got every answer (served or shed), exactly once.
  for (const auto& client : handles) {
    EXPECT_EQ(client->responses().size(), kPerClient);
  }
}

TEST(ServeIntrospect, UndecodableFramesStayOutsideTheRequestCount) {
  ServeConfig config;
  config.d = 2;
  config.k = 6;
  RouteServer server(config);
  Client client(server);
  // A decodable frame with an unknown type is a *request* answered
  // BadRequest; a frame too short to decode is only an *answer*.
  std::string stream;
  stream.push_back('\x02');
  stream.push_back('\0');
  stream.push_back('\0');
  stream.push_back('\0');
  stream.push_back('\x09');  // unknown request type...
  stream.push_back('\x01');  // ...but an id byte short of decodable
  ASSERT_TRUE(client.conn->feed(stream));
  server.wait_drained();
  const IntrospectSnapshot snap = server.introspect();
  expect_identity(snap, "undecodable");
  EXPECT_EQ(snap.stats.requests, 0u);
  EXPECT_EQ(snap.stats.rejected_bad_request, 1u);
  EXPECT_EQ(snap.stats.rejected_undecodable, 1u);
  ASSERT_EQ(client.responses().size(), 1u);
  EXPECT_EQ(client.responses()[0].status, Status::BadRequest);
}

// --- deterministic sampling -------------------------------------------------

TEST(ServeIntrospect, TraceSamplerIsDeterministicPerSeed) {
  const TraceSampler a(8, 2026);
  const TraceSampler b(8, 2026);
  const TraceSampler c(8, 9999);
  std::set<std::uint64_t> sampled_a;
  std::set<std::uint64_t> sampled_c;
  for (std::uint64_t id = 0; id < 4096; ++id) {
    if (a.sampled(id)) {
      sampled_a.insert(id);
    }
    EXPECT_EQ(a.sampled(id), b.sampled(id)) << id;
    if (c.sampled(id)) {
      sampled_c.insert(id);
    }
  }
  // Roughly 1-in-8 of 4096 ids; the hash should not collapse or saturate.
  EXPECT_GT(sampled_a.size(), 256u);
  EXPECT_LT(sampled_a.size(), 1024u);
  // A different seed picks a different subset.
  EXPECT_NE(sampled_a, sampled_c);
}

TEST(ServeIntrospect, TraceSamplerEdgeRates) {
  const TraceSampler off(0, 1);
  const TraceSampler all(1, 1);
  for (std::uint64_t id = 0; id < 64; ++id) {
    EXPECT_FALSE(off.sampled(id));
    EXPECT_TRUE(all.sampled(id));
  }
}

// --- slow log ---------------------------------------------------------------

SlowRecord record_with_total(double total_us) {
  return SlowRecord{1, 1, RequestType::Route, total_us, 0.0, 0.0, 1};
}

TEST(ServeIntrospect, SlowLogThresholdIsBoundaryInclusive) {
  SlowLog log(100.0, 4);
  EXPECT_FALSE(log.note(record_with_total(99.999)));
  EXPECT_TRUE(log.note(record_with_total(100.0)));  // exactly at threshold
  EXPECT_TRUE(log.note(record_with_total(100.001)));
  EXPECT_EQ(log.total(), 2u);
  EXPECT_EQ(log.records().size(), 2u);
}

TEST(ServeIntrospect, SlowLogDisabledWhenThresholdIsZero) {
  SlowLog log(0.0, 4);
  EXPECT_FALSE(log.note(record_with_total(1e9)));
  EXPECT_EQ(log.total(), 0u);
  EXPECT_TRUE(log.records().empty());
}

TEST(ServeIntrospect, SlowLogRingEvictsOldestButCountsAll) {
  SlowLog log(10.0, 3);
  for (int i = 0; i < 7; ++i) {
    EXPECT_TRUE(log.note(
        SlowRecord{static_cast<std::uint64_t>(i), 1, RequestType::Route,
                   20.0, 0.0, 0.0, 1}));
  }
  EXPECT_EQ(log.total(), 7u);
  const std::vector<SlowRecord> kept = log.records();
  ASSERT_EQ(kept.size(), 3u);
  EXPECT_EQ(kept[0].id, 4u);  // oldest surviving
  EXPECT_EQ(kept[2].id, 6u);  // newest
}

TEST(ServeIntrospect, ServerCapturesSlowRequestsAboveThreshold) {
  ServeConfig config;
  config.d = 2;
  config.k = 10;
  config.slow_us = 0.001;  // everything real is slower than a nanosecond
  RouteServer server(config);
  Client client(server);
  Rng rng(3);
  std::string stream;
  for (std::uint64_t i = 0; i < 10; ++i) {
    encode_route_request(i, random_word(rng, config.d, config.k),
                         random_word(rng, config.d, config.k), stream);
  }
  ASSERT_TRUE(client.conn->feed(stream));
  server.wait_drained();
  const IntrospectSnapshot snap = server.introspect();
  EXPECT_EQ(snap.stats.slow_requests, 10u);
  EXPECT_EQ(snap.slow.size(), 10u);
  for (const SlowRecord& r : snap.slow) {
    EXPECT_GE(r.total_us, r.queue_us);
    EXPECT_GT(r.batch_size, 0u);
  }
}

}  // namespace
