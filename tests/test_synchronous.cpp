#include <gtest/gtest.h>

#include <algorithm>

#include "common/contract.hpp"
#include "common/rng.hpp"
#include "core/distance.hpp"
#include "core/routers.hpp"
#include "net/synchronous.hpp"
#include "testing_util.hpp"

namespace dbn::net {
namespace {

Message routed(const Word& src, const Word& dst) {
  return Message(ControlCode::Data, src, dst,
                 route_bidirectional_mp(src, dst));
}

TEST(Synchronous, SingleMessageLatencyEqualsHops) {
  SimConfig config;
  config.radix = 2;
  config.k = 5;
  SynchronousNetwork net(config);
  const Word src = Word::from_rank(2, 5, 6);
  const Word dst = Word::from_rank(2, 5, 25);
  net.inject(0, routed(src, dst));
  net.run();
  EXPECT_EQ(net.stats().delivered, 1u);
  EXPECT_DOUBLE_EQ(net.stats().mean_latency(),
                   static_cast<double>(undirected_distance(src, dst)));
}

TEST(Synchronous, MatchesDiscreteEventSimulatorOnStaggeredWorkload) {
  // Same staggered (contention-tie-free) workload through both substrates:
  // per-message latencies must agree exactly (unit link delay).
  SimConfig config;
  config.radix = 2;
  config.k = 6;
  SynchronousNetwork sync(config);
  Simulator des(config);
  Rng rng(12321);
  for (int i = 0; i < 150; ++i) {
    const Word src = testing::random_word(rng, 2, 6);
    const Word dst = testing::random_word(rng, 2, 6);
    const Message m = routed(src, dst);
    sync.inject(3 * i, m);
    des.inject(3.0 * i, m);
  }
  sync.run();
  des.run();
  EXPECT_EQ(sync.stats().delivered, des.stats().delivered);
  EXPECT_EQ(sync.stats().total_hops, des.stats().total_hops);
  ASSERT_EQ(sync.stats().latencies.size(), des.stats().latencies.size());
  // Latencies are recorded in delivery order which can differ; compare as
  // sorted multisets.
  auto a = sync.stats().latencies;
  auto b = des.stats().latencies;
  std::sort(a.begin(), a.end());
  std::sort(b.begin(), b.end());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_DOUBLE_EQ(a[i], b[i]) << "latency multiset mismatch at " << i;
  }
}

TEST(Synchronous, ContendedBurstConservesAndSerializes) {
  SimConfig config;
  config.radix = 2;
  config.k = 4;
  SynchronousNetwork net(config);
  const Word src(2, {0, 0, 0, 0});
  const Word dst(2, {0, 0, 0, 1});
  for (int i = 0; i < 5; ++i) {
    net.inject(0, routed(src, dst));
  }
  net.run();
  EXPECT_EQ(net.stats().delivered, 5u);
  // One link, one message per round: latencies 1..5.
  auto lat = net.stats().latencies;
  std::sort(lat.begin(), lat.end());
  for (int i = 0; i < 5; ++i) {
    EXPECT_DOUBLE_EQ(lat[static_cast<std::size_t>(i)], i + 1.0);
  }
  EXPECT_EQ(net.stats().max_queue, 5u);
}

TEST(Synchronous, FaultsAndOverflowAccounted) {
  SimConfig config;
  config.radix = 2;
  config.k = 4;
  config.link_queue_capacity = 2;
  SynchronousNetwork net(config);
  net.fail_node(9);
  const Word src(2, {0, 0, 0, 0});
  const Word dst(2, {0, 0, 0, 1});
  for (int i = 0; i < 4; ++i) {
    net.inject(0, routed(src, dst));
  }
  const Word dead = Word::from_rank(2, 4, 9);
  net.inject(0, routed(src, dead));
  net.run();
  const SimStats& s = net.stats();
  EXPECT_EQ(s.injected,
            s.delivered + s.dropped_fault + s.dropped_overflow +
                s.misdelivered);
  EXPECT_GT(s.dropped_overflow, 0u);
  EXPECT_EQ(s.dropped_fault, 1u);
}

TEST(Synchronous, HopByHopForwardingWorks) {
  SimConfig config;
  config.radix = 2;
  config.k = 5;
  config.forwarding = ForwardingMode::HopByHop;
  SynchronousNetwork net(config);
  Rng rng(77);
  std::uint64_t expected_hops = 0;
  for (int i = 0; i < 40; ++i) {
    const Word src = testing::random_word(rng, 2, 5);
    const Word dst = testing::random_word(rng, 2, 5);
    expected_hops += static_cast<std::uint64_t>(undirected_distance(src, dst));
    net.inject(2 * i, Message(ControlCode::Data, src, dst, RoutingPath{}));
  }
  net.run();
  EXPECT_EQ(net.stats().delivered, 40u);
  EXPECT_EQ(net.stats().total_hops, expected_hops);
}

TEST(Synchronous, RejectsBadUsage) {
  SimConfig config;
  config.radix = 2;
  config.k = 3;
  SynchronousNetwork net(config);
  EXPECT_THROW(net.fail_node(8), ContractViolation);
  const Word w(3, {0, 1, 2});
  EXPECT_THROW(net.inject(0, Message(ControlCode::Data, w, w, RoutingPath{})),
               ContractViolation);
}

}  // namespace
}  // namespace dbn::net
