// Differential battery for the distance-layer tables (core/layer_table.*):
// classify() must agree with brute-force D(·,Y) recomputation on EVERY
// (X, Y, neighbor) triple of every small network, in both orientations —
// the layer table is the adaptive router's only notion of progress, so a
// single wrong byte silently degrades deflection into a random walk.
#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "common/contract.hpp"
#include "core/distance.hpp"
#include "core/layer_table.hpp"
#include "debruijn/kautz.hpp"
#include "debruijn/kautz_routing.hpp"
#include "testing_util.hpp"

namespace dbn {
namespace {

DistanceLayer expected_layer(int here, int there) {
  if (there < here) {
    return DistanceLayer::Closer;
  }
  return there == here ? DistanceLayer::Same : DistanceLayer::Farther;
}

/// Every (d,k) point the exhaustive sweeps cover: all-pairs brute force
/// stays cheap up to d = k = 4 (256 vertices), and the d = 1 / k = 1
/// degenerate corners ride along.
std::vector<testing::DkParam> layer_grid() {
  std::vector<testing::DkParam> grid;
  for (std::uint32_t d = 1; d <= 4; ++d) {
    for (std::size_t k = 1; k <= 4; ++k) {
      grid.push_back({d, k});
    }
  }
  return grid;
}

TEST(LayerTable, ExhaustiveDifferentialUndirected) {
  for (const auto& p : layer_grid()) {
    SCOPED_TRACE(::testing::Message() << p);
    const DeBruijnGraph g(p.d, p.k, Orientation::Undirected);
    LayerTable table(g);
    const std::uint64_t n = g.vertex_count();
    for (std::uint64_t yr = 0; yr < n; ++yr) {
      const Word y = g.word(yr);
      const auto view = table.view(y);
      ASSERT_NE(view, nullptr);
      EXPECT_EQ(view->destination(), yr);
      for (std::uint64_t xr = 0; xr < n; ++xr) {
        const Word x = g.word(xr);
        const int here = undirected_distance_quadratic(x, y);
        ASSERT_EQ(view->distance(xr), here);
        for (const std::uint64_t nr : g.neighbors(xr)) {
          const int there = undirected_distance_quadratic(g.word(nr), y);
          // Graph metric: one move changes the distance by at most 1, so
          // Closer pins the neighbor to exactly here-1 and Farther to
          // here+1 — the property the O(1) rewrite of net/adaptive.cpp
          // leans on for decision-identity with the old re-scoring.
          ASSERT_LE(there, here + 1);
          ASSERT_GE(there, here - 1);
          ASSERT_EQ(view->classify(xr, nr), expected_layer(here, there))
              << "x=" << xr << " y=" << yr << " neighbor=" << nr;
        }
      }
    }
  }
}

TEST(LayerTable, ExhaustiveDifferentialDirected) {
  for (const auto& p : layer_grid()) {
    SCOPED_TRACE(::testing::Message() << p);
    const DeBruijnGraph g(p.d, p.k, Orientation::Directed);
    LayerTable table(g);
    const std::uint64_t n = g.vertex_count();
    for (std::uint64_t yr = 0; yr < n; ++yr) {
      const Word y = g.word(yr);
      const auto view = table.view(y);
      for (std::uint64_t xr = 0; xr < n; ++xr) {
        const Word x = g.word(xr);
        const int here = directed_distance(x, y);
        ASSERT_EQ(view->distance(xr), here);
        for (const std::uint64_t nr : g.neighbors(xr)) {
          // Directed: an out-move can overshoot arbitrarily far, so only
          // the trichotomy itself is checked, not the |delta| <= 1 bound.
          const int there = directed_distance(g.word(nr), y);
          ASSERT_EQ(view->classify(xr, nr), expected_layer(here, there))
              << "x=" << xr << " y=" << yr << " neighbor=" << nr;
        }
      }
    }
  }
}

TEST(LayerTable, ExhaustiveDifferentialKautz) {
  // Kautz networks share the byte-table machinery but not the distance
  // function; K(2,3) and K(3,2) are exhaustively checked, K(2,4) rides as
  // a deeper spot check.
  const std::vector<std::pair<std::uint32_t, std::size_t>> points = {
      {2, 3}, {3, 2}, {2, 4}};
  for (const auto& [d, k] : points) {
    SCOPED_TRACE(::testing::Message() << "K(" << d << "," << k << ")");
    const KautzGraph g(d, k);
    LayerTable table(g);
    const std::uint64_t n = g.vertex_count();
    for (std::uint64_t yr = 0; yr < n; ++yr) {
      const Word y = g.word(yr);
      const auto view = table.view(y);
      for (std::uint64_t xr = 0; xr < n; ++xr) {
        const int here = kautz_directed_distance(g, g.word(xr), y);
        ASSERT_EQ(view->distance(xr), here);
        for (const std::uint64_t nr : g.out_neighbors(xr)) {
          const int there = kautz_directed_distance(g, g.word(nr), y);
          ASSERT_EQ(view->classify(xr, nr), expected_layer(here, there))
              << "x=" << xr << " y=" << yr << " neighbor=" << nr;
        }
      }
    }
  }
}

TEST(LayerTable, TripleFormMatchesPinnedView) {
  const DeBruijnGraph g(3, 3, Orientation::Undirected);
  LayerTable table(g);
  DBN_SEEDED_RNG(rng, 71);
  for (int trial = 0; trial < 200; ++trial) {
    const std::uint64_t xr = rng.below(g.vertex_count());
    const std::uint64_t yr = rng.below(g.vertex_count());
    const Word x = g.word(xr);
    const Word y = g.word(yr);
    const auto view = table.view(y);
    for (const std::uint64_t nr : g.neighbors(xr)) {
      EXPECT_EQ(table.classify(x, y, g.word(nr)), view->classify(xr, nr));
    }
  }
}

TEST(LayerTable, DegenerateCorners) {
  // d = 1: a single vertex whose only move is the self-loop — every
  // classification is Same at distance 0.
  for (const std::size_t k : {std::size_t{1}, std::size_t{4}}) {
    const DeBruijnGraph g(1, k, Orientation::Undirected);
    LayerTable table(g);
    const auto view = table.view(g.word(0));
    EXPECT_EQ(view->distance(0), 0);
    for (const std::uint64_t nr : g.neighbors(0)) {
      EXPECT_EQ(view->classify(0, nr), DistanceLayer::Same);
    }
  }
  // k = 1: the complete graph K_d — from any x != y the destination is
  // Closer, every other vertex Same, and nothing is ever Farther.
  const DeBruijnGraph g(5, 1, Orientation::Undirected);
  LayerTable table(g);
  const auto view = table.view(g.word(3));
  for (std::uint64_t xr = 0; xr < g.vertex_count(); ++xr) {
    for (const std::uint64_t nr : g.neighbors(xr)) {
      const DistanceLayer layer = view->classify(xr, nr);
      if (xr == 3) {
        EXPECT_EQ(layer, DistanceLayer::Farther) << nr;  // leaving y
      } else {
        EXPECT_EQ(layer, nr == 3 ? DistanceLayer::Closer
                                 : DistanceLayer::Same);
      }
    }
  }
}

TEST(LayerTable, CacheCountsLookupsHitsBuildsEvictions) {
  const DeBruijnGraph g(2, 4, Orientation::Undirected);
  LayerTableOptions options;
  options.cache_destinations = 2;
  options.cache_shards = 1;
  LayerTable table(g, options);

  const auto v0 = table.view(g.word(0));
  auto stats = table.stats();
  EXPECT_EQ(stats.lookups, 1u);
  EXPECT_EQ(stats.builds, 1u);
  EXPECT_EQ(stats.hits, 0u);

  // Same destination again: served from cache, same table object.
  const auto v0_again = table.view(g.word(0));
  EXPECT_EQ(v0_again.get(), v0.get());
  stats = table.stats();
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.builds, 1u);

  // Two slots, sixteen destinations: displacement is inevitable, and every
  // store over a different destination counts as exactly one eviction.
  for (std::uint64_t y = 0; y < g.vertex_count(); ++y) {
    (void)table.view(g.word(y));
  }
  stats = table.stats();
  EXPECT_GT(stats.evictions, 0u);
  EXPECT_EQ(stats.lookups, 2 + g.vertex_count());
  EXPECT_EQ(stats.builds + stats.hits, stats.lookups);

  // The pinned view survives whatever evicted it.
  EXPECT_EQ(v0->distance(0), 0);
  EXPECT_EQ(v0->classify(0, 1),
            expected_layer(undirected_distance(g.word(0), g.word(0)),
                           undirected_distance(g.word(1), g.word(0))));
}

TEST(LayerTable, UncachedModeRebuildsEveryView) {
  const DeBruijnGraph g(2, 3, Orientation::Undirected);
  LayerTableOptions options;
  options.cache_destinations = 0;
  LayerTable table(g, options);
  const auto a = table.view(g.word(5));
  const auto b = table.view(g.word(5));
  EXPECT_NE(a.get(), b.get());
  const auto stats = table.stats();
  EXPECT_EQ(stats.lookups, 2u);
  EXPECT_EQ(stats.builds, 2u);
  EXPECT_EQ(stats.hits, 0u);
  EXPECT_EQ(stats.evictions, 0u);
}

TEST(LayerTable, ConcurrentViewsAreConsistent) {
  // Hammer one table from several threads with colliding destinations;
  // every returned view must be complete and correct regardless of who
  // built or evicted what. (The TSan job re-runs this for data races.)
  const DeBruijnGraph g(2, 5, Orientation::Undirected);
  LayerTableOptions options;
  options.cache_destinations = 4;
  options.cache_shards = 2;
  LayerTable table(g, options);
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&table, &g, t] {
      for (int round = 0; round < 50; ++round) {
        const std::uint64_t yr =
            static_cast<std::uint64_t>((t + round) % 8);
        const auto view = table.view(g.word(yr));
        for (std::uint64_t xr = 0; xr < g.vertex_count(); ++xr) {
          const int here = view->distance(xr);
          if (xr == yr) {
            ASSERT_EQ(here, 0);
          } else {
            ASSERT_GT(here, 0);
          }
        }
      }
    });
  }
  for (std::thread& thread : threads) {
    thread.join();
  }
  const auto stats = table.stats();
  EXPECT_EQ(stats.lookups, 4u * 50u);
  EXPECT_GE(stats.builds, 8u);  // at least one build per distinct y
}

TEST(LayerTable, RejectsBadUsage) {
  const DeBruijnGraph g(2, 4, Orientation::Undirected);
  LayerTableOptions tiny;
  tiny.max_vertices = 4;  // DN(2,4) has 16 vertices
  EXPECT_THROW(LayerTable(g, tiny), ContractViolation);

  LayerTable table(g);
  const Word foreign(3, {0, 1, 2, 0});  // wrong radix
  EXPECT_THROW(table.view(foreign), ContractViolation);
  const Word short_word(2, {0, 1});  // wrong length
  EXPECT_THROW(table.view(short_word), ContractViolation);
}

}  // namespace
}  // namespace dbn
