#include <gtest/gtest.h>

#include "core/routers.hpp"
#include "net/load_stats.hpp"
#include "net/simulator.hpp"
#include "testing_util.hpp"

namespace dbn::net {
namespace {

TEST(LoadStats, GiniOfUniformIsZero) {
  EXPECT_DOUBLE_EQ(gini_coefficient(std::vector<double>{5, 5, 5, 5}), 0.0);
  EXPECT_DOUBLE_EQ(gini_coefficient(std::vector<double>{}), 0.0);
  EXPECT_DOUBLE_EQ(gini_coefficient(std::vector<double>{0, 0, 0}), 0.0);
}

TEST(LoadStats, GiniOfConcentratedLoadApproachesOne) {
  std::vector<double> values(100, 0.0);
  values[0] = 1000.0;
  const double g = gini_coefficient(values);
  EXPECT_GT(g, 0.95);
  EXPECT_LE(g, 1.0);
}

TEST(LoadStats, GiniIsScaleInvariantAndOrderInvariant) {
  const std::vector<double> a = {1, 2, 3, 4};
  const std::vector<double> b = {4, 2, 1, 3};
  std::vector<double> scaled;
  for (const double v : a) {
    scaled.push_back(10 * v);
  }
  EXPECT_NEAR(gini_coefficient(a), gini_coefficient(b), 1e-12);
  EXPECT_NEAR(gini_coefficient(a), gini_coefficient(scaled), 1e-12);
  // Known value for {1,2,3,4}: G = 0.25.
  EXPECT_NEAR(gini_coefficient(a), 0.25, 1e-12);
}

TEST(LoadStats, JainFairnessOfUniformIsOne) {
  EXPECT_DOUBLE_EQ(jain_fairness_index(std::vector<double>{7, 7, 7}), 1.0);
  // Degenerate inputs read as perfectly fair, matching gini's convention.
  EXPECT_DOUBLE_EQ(jain_fairness_index(std::vector<double>{}), 1.0);
  EXPECT_DOUBLE_EQ(jain_fairness_index(std::vector<double>{0, 0}), 1.0);
}

TEST(LoadStats, JainFairnessOfConcentratedLoadIsOneOverN) {
  // One active source among n: J = (Σx)² / (n·Σx²) = 1/n.
  std::vector<double> values(10, 0.0);
  values[3] = 42.0;
  EXPECT_NEAR(jain_fairness_index(values), 0.1, 1e-12);
}

TEST(LoadStats, JainFairnessIsScaleInvariantAndMatchesClosedForm) {
  const std::vector<double> a = {1, 2, 3, 4};
  std::vector<double> scaled;
  for (const double v : a) {
    scaled.push_back(1000 * v);
  }
  EXPECT_NEAR(jain_fairness_index(a), jain_fairness_index(scaled), 1e-12);
  // (1+2+3+4)² / (4 · (1+4+9+16)) = 100/120.
  EXPECT_NEAR(jain_fairness_index(a), 100.0 / 120.0, 1e-12);
  // The uint64 overload (the per-connection counters path) agrees.
  EXPECT_NEAR(jain_fairness_index(std::vector<std::uint64_t>{1, 2, 3, 4}),
              100.0 / 120.0, 1e-12);
}

TEST(LoadStats, CoefficientOfVariation) {
  EXPECT_DOUBLE_EQ(coefficient_of_variation({4, 4, 4}), 0.0);
  EXPECT_DOUBLE_EQ(coefficient_of_variation({}), 0.0);
  // {0, 2}: mean 1, stddev 1 -> CV 1.
  EXPECT_DOUBLE_EQ(coefficient_of_variation({0, 2}), 1.0);
}

TEST(LoadStats, SimulatorLinkTransmissionsConserveHops) {
  SimConfig config;
  config.radix = 2;
  config.k = 5;
  Simulator sim(config);
  Rng rng(7);
  std::uint64_t expected = 0;
  for (int i = 0; i < 60; ++i) {
    const Word src = testing::random_word(rng, 2, 5);
    const Word dst = testing::random_word(rng, 2, 5);
    const RoutingPath path = route_bidirectional_mp(src, dst);
    expected += path.length();
    sim.inject(0.5 * i, Message(ControlCode::Data, src, dst, path));
  }
  sim.run();
  std::uint64_t transmitted = 0;
  for (const std::uint64_t t : sim.link_transmissions()) {
    transmitted += t;
  }
  EXPECT_EQ(transmitted, expected);
  EXPECT_EQ(sim.stats().total_hops, expected);
}

TEST(LoadStats, RandomPolicySpreadsLoadBetterThanZero) {
  auto run = [](WildcardPolicy policy) {
    SimConfig config;
    config.radix = 2;
    config.k = 7;
    config.wildcard_policy = policy;
    config.seed = 11;
    Simulator sim(config);
    Rng rng(13);
    for (int i = 0; i < 600; ++i) {
      const Word src = testing::random_word(rng, 2, 7);
      const Word dst = testing::random_word(rng, 2, 7);
      sim.inject(0.1 * i,
                 Message(ControlCode::Data, src, dst,
                         route_bidirectional_mp(src, dst,
                                                WildcardMode::Wildcards)));
    }
    sim.run();
    return gini_coefficient(sim.link_transmissions());
  };
  // Zero funnels all wildcard hops through 0-digit links; Random spreads
  // them. The gap is small but consistent under a fixed seed.
  EXPECT_LT(run(WildcardPolicy::Random), run(WildcardPolicy::Zero));
}

}  // namespace
}  // namespace dbn::net
