#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>

#include "common/contract.hpp"
#include "common/rng.hpp"
#include "strings/suffix_tree.hpp"
#include "testing_util.hpp"

namespace dbn::strings {
namespace {

using dbn::testing::random_symbols;

std::vector<Symbol> with_endmarker(std::vector<Symbol> s) {
  Symbol max_symbol = 0;
  for (const Symbol c : s) {
    max_symbol = std::max(max_symbol, c);
  }
  s.push_back(max_symbol + 1);
  return s;
}

/// Suffix array by brute force (sort suffixes lexicographically).
std::vector<std::size_t> naive_suffix_array(const std::vector<Symbol>& text) {
  std::vector<std::size_t> idx(text.size());
  std::iota(idx.begin(), idx.end(), 0);
  std::sort(idx.begin(), idx.end(), [&](std::size_t a, std::size_t b) {
    return std::lexicographical_compare(text.begin() + static_cast<long>(a),
                                        text.end(),
                                        text.begin() + static_cast<long>(b),
                                        text.end());
  });
  return idx;
}

TEST(SuffixTree, BananaStructure) {
  const auto text = with_endmarker(to_symbols("banana"));
  const SuffixTree tree(text);
  // banana$ has 7 suffixes -> 7 leaves; internal nodes: root, "a", "na",
  // "ana"? Compact tree of banana$ has 4 internal nodes including root.
  int leaves = 0, internal = 0;
  for (int v = 0; v < tree.node_count(); ++v) {
    (tree.is_leaf(v) ? leaves : internal)++;
  }
  EXPECT_EQ(leaves, 7);
  EXPECT_EQ(internal, 4);
  EXPECT_TRUE(tree.contains(to_symbols("ana")));
  EXPECT_TRUE(tree.contains(to_symbols("banana")));
  EXPECT_TRUE(tree.contains(to_symbols("nan")));
  EXPECT_FALSE(tree.contains(to_symbols("nab")));
  EXPECT_FALSE(tree.contains(to_symbols("bananab")));
}

TEST(SuffixTree, SuffixArrayMatchesBruteForce) {
  Rng rng(808);
  for (int trial = 0; trial < 150; ++trial) {
    const std::uint32_t alphabet = 2 + trial % 4;
    const auto text =
        with_endmarker(random_symbols(rng, 1 + rng.below(60), alphabet));
    const SuffixTree tree(text);
    EXPECT_EQ(tree.suffix_array(), naive_suffix_array(text))
        << "trial " << trial;
  }
}

TEST(SuffixTree, UkkonenMatchesNaiveBuilder) {
  Rng rng(909);
  for (int trial = 0; trial < 200; ++trial) {
    const std::uint32_t alphabet = 2 + trial % 3;
    const auto text =
        with_endmarker(random_symbols(rng, 1 + rng.below(50), alphabet));
    const SuffixTree fast(text);
    const SuffixTree slow = SuffixTree::build_naive(text);
    EXPECT_EQ(fast.signature(), slow.signature()) << "trial " << trial;
    EXPECT_EQ(fast.node_count(), slow.node_count());
  }
}

TEST(SuffixTree, NodeCountIsLinear) {
  // A tree over n symbols has n leaves and at most n-1 internal nodes
  // (every internal node except possibly the root has >= 2 children).
  Rng rng(111);
  for (int trial = 0; trial < 50; ++trial) {
    const std::size_t n = 2 + rng.below(200);
    const auto text = with_endmarker(random_symbols(rng, n, 2));
    const SuffixTree tree(text);
    EXPECT_LE(tree.node_count(), static_cast<int>(2 * text.size()));
  }
}

TEST(SuffixTree, EveryInternalNodeHasAtLeastTwoChildren) {
  Rng rng(222);
  for (int trial = 0; trial < 50; ++trial) {
    const auto text =
        with_endmarker(random_symbols(rng, 1 + rng.below(80), 3));
    const SuffixTree tree(text);
    for (int v = 0; v < tree.node_count(); ++v) {
      if (!tree.is_leaf(v) && v != tree.root()) {
        EXPECT_GE(tree.children(v).size(), 2u) << "node " << v;
      }
    }
  }
}

TEST(SuffixTree, DepthsAndParentsConsistent) {
  Rng rng(333);
  const auto text = with_endmarker(random_symbols(rng, 64, 2));
  const SuffixTree tree(text);
  EXPECT_EQ(tree.string_depth(tree.root()), 0);
  EXPECT_EQ(tree.parent(tree.root()), -1);
  for (int v = 1; v < tree.node_count(); ++v) {
    const int p = tree.parent(v);
    ASSERT_GE(p, 0);
    EXPECT_EQ(tree.string_depth(v),
              tree.string_depth(p) +
                  static_cast<int>(tree.edge_end(v) - tree.edge_begin(v)));
  }
}

TEST(SuffixTree, LeafDepthsEqualSuffixLengths) {
  Rng rng(444);
  const auto text = with_endmarker(random_symbols(rng, 40, 2));
  const SuffixTree tree(text);
  std::vector<bool> seen(text.size(), false);
  for (int v = 1; v < tree.node_count(); ++v) {
    if (!tree.is_leaf(v)) {
      continue;
    }
    const std::size_t start = tree.suffix_start(v);
    ASSERT_LT(start, text.size());
    EXPECT_FALSE(seen[start]) << "duplicate leaf for suffix " << start;
    seen[start] = true;
    EXPECT_EQ(static_cast<std::size_t>(tree.string_depth(v)),
              text.size() - start);
  }
  for (std::size_t i = 0; i < text.size(); ++i) {
    EXPECT_TRUE(seen[i]) << "missing leaf for suffix " << i;
  }
}

TEST(SuffixTree, ContainsAgreesWithDirectSearchOnAllSubstrings) {
  Rng rng(555);
  const auto base = random_symbols(rng, 24, 2);
  const auto text = with_endmarker(base);
  const SuffixTree tree(text);
  // Every substring of the text must be found.
  for (std::size_t i = 0; i < base.size(); ++i) {
    for (std::size_t len = 1; i + len <= base.size(); ++len) {
      std::vector<Symbol> sub(base.begin() + static_cast<long>(i),
                              base.begin() + static_cast<long>(i + len));
      EXPECT_TRUE(tree.contains(sub));
    }
  }
  // Random probes agree with a direct scan.
  for (int probe = 0; probe < 200; ++probe) {
    const auto pat = random_symbols(rng, 1 + rng.below(6), 2);
    const bool expected =
        std::search(text.begin(), text.end(), pat.begin(), pat.end()) !=
        text.end();
    EXPECT_EQ(tree.contains(pat), expected);
  }
}

TEST(SuffixTree, RejectsInvalidTexts) {
  EXPECT_THROW(SuffixTree(std::vector<Symbol>{}), ContractViolation);
  // Last symbol must be unique.
  EXPECT_THROW(SuffixTree(to_symbols("aba")), ContractViolation);
  EXPECT_NO_THROW(SuffixTree(to_symbols("ab")));
}

TEST(SuffixTree, SingleSymbolText) {
  const SuffixTree tree(to_symbols("z"));
  EXPECT_EQ(tree.node_count(), 2);  // root + one leaf
  EXPECT_TRUE(tree.contains(to_symbols("z")));
  EXPECT_FALSE(tree.contains(to_symbols("y")));
}

}  // namespace
}  // namespace dbn::strings
