// Contract macros at level 0 (release): every macro must compile to
// nothing — conditions and messages are parsed (they cannot rot) but never
// evaluated, and nothing throws. The level is pinned before any include so
// this TU exercises the release configuration inside a normal test build.
#ifdef DBN_CONTRACT_LEVEL
#undef DBN_CONTRACT_LEVEL
#endif
#define DBN_CONTRACT_LEVEL 0

#include "common/contract.hpp"

#include <gtest/gtest.h>

// Declared, never defined anywhere. The macros keep the condition in an
// unevaluated sizeof context, so this TU must still link — the
// compile-and-link of this file IS the no-op-at-release proof. (External
// linkage on purpose: an anonymous-namespace declaration would trip
// -Wunused-function, and a definition would weaken the proof.)
bool dbn_contract_test_never_defined();

namespace {

TEST(ContractReleaseLevel, LevelIsZero) {
  EXPECT_EQ(dbn::contract_level(), 0);
  EXPECT_EQ(DBN_AUDIT_ENABLED, 0);
}

TEST(ContractReleaseLevel, FalseConditionsDoNotThrow) {
  EXPECT_NO_THROW(DBN_REQUIRE(false, "compiled out"));
  EXPECT_NO_THROW(DBN_ENSURE(false, "compiled out"));
  EXPECT_NO_THROW(DBN_ASSERT(false, "compiled out"));
  EXPECT_NO_THROW(DBN_AUDIT(false, "compiled out"));
}

TEST(ContractReleaseLevel, ConditionsAreNeverEvaluated) {
  int calls = 0;
  DBN_REQUIRE(++calls > 0, "must not run");
  DBN_ENSURE(++calls > 0, "must not run");
  DBN_ASSERT(++calls > 0, "must not run");
  DBN_AUDIT(++calls > 0, "must not run");
  EXPECT_EQ(calls, 0);
}

TEST(ContractReleaseLevel, ConditionsAreStillParsedAndNameChecked) {
  // dbn_contract_test_never_defined() has no definition anywhere; if the
  // disabled form evaluated (or even odr-used) the condition, this TU
  // would not link.
  DBN_ASSERT(dbn_contract_test_never_defined(),
             "parsed, name-looked-up, not odr-used");
  SUCCEED();
}

}  // namespace
