#include <gtest/gtest.h>

#include "common/contract.hpp"
#include "common/rng.hpp"
#include "debruijn/bfs.hpp"
#include "core/distance.hpp"
#include "core/routers.hpp"
#include "net/fault.hpp"
#include "net/simulator.hpp"
#include "testing_util.hpp"

namespace dbn::net {
namespace {

TEST(Fault, RouterAvoidsFailedSites) {
  const DeBruijnGraph g(2, 5, Orientation::Undirected);
  Rng rng(11);
  for (int trial = 0; trial < 50; ++trial) {
    const auto failed = random_fault_set(g, 1, rng);
    const FaultAwareRouter router(g, failed);
    for (int probe = 0; probe < 20; ++probe) {
      const std::uint64_t xr = rng.below(g.vertex_count());
      const std::uint64_t yr = rng.below(g.vertex_count());
      const Word x = g.word(xr);
      const Word y = g.word(yr);
      const auto path = router.route(x, y);
      if (failed[xr] || failed[yr]) {
        EXPECT_FALSE(path.has_value());
        continue;
      }
      ASSERT_TRUE(path.has_value())
          << "d-1 = 1 failure must not disconnect DN(2,5)";
      // Walk the path: never touch a failed site, end at y.
      Word at = x;
      for (const Hop& h : path->hops()) {
        at = h.type == ShiftType::Left ? at.left_shift(h.digit)
                                       : at.right_shift(h.digit);
        EXPECT_FALSE(failed[at.rank()]) << "path crosses a failed site";
      }
      EXPECT_EQ(at, y);
    }
  }
}

TEST(Fault, RoutesAreShortestAmongSurvivors) {
  const DeBruijnGraph g(2, 4, Orientation::Undirected);
  std::vector<bool> failed(g.vertex_count(), false);
  failed[3] = true;
  const FaultAwareRouter router(g, failed);
  for (std::uint64_t xr = 0; xr < g.vertex_count(); ++xr) {
    if (failed[xr]) {
      continue;
    }
    const auto dist = bfs_distances_avoiding(g, xr, failed);
    for (std::uint64_t yr = 0; yr < g.vertex_count(); ++yr) {
      if (failed[yr]) {
        continue;
      }
      const auto path = router.route(g.word(xr), g.word(yr));
      ASSERT_TRUE(path.has_value());
      EXPECT_EQ(static_cast<int>(path->length()), dist[yr]);
    }
  }
}

TEST(Fault, ToleratesUpToDMinusOneFailures) {
  // Pradhan–Reddy claim measured: for f <= d-1 random failures the
  // survivors of the undirected DN(d,k) stay connected.
  Rng rng(22);
  for (const auto& [d, k] : std::vector<std::pair<std::uint32_t, std::size_t>>{
           {2, 5}, {3, 3}, {4, 3}, {5, 2}}) {
    const DeBruijnGraph g(d, k, Orientation::Undirected);
    for (std::size_t f = 0; f + 1 <= static_cast<std::size_t>(d) - 1; ++f) {
      for (int trial = 0; trial < 30; ++trial) {
        const auto failed = random_fault_set(g, f + 1, rng);
        EXPECT_TRUE(survivors_connected(g, failed))
            << "d=" << d << " k=" << k << " f=" << (f + 1);
      }
    }
  }
}

TEST(Fault, DFailuresCanDisconnect) {
  // Failing all d in-window predecessors of a site isolates it for
  // forward routing; undirected DG(2,k): the two words (0,1,0,...) style
  // neighborhoods are small. Construct an explicit disconnection for d=2:
  // vertex 01 in DG(2,2) has neighbors {00, 10, 11}... use the constant
  // word 00 in DG(2,3), whose cleaned degree is 2d-2 = 2: failing its two
  // neighbors isolates it.
  const DeBruijnGraph g(2, 3, Orientation::Undirected);
  const Word zero(2, {0, 0, 0});
  std::vector<bool> failed(g.vertex_count(), false);
  for (const std::uint64_t v : g.neighbors(zero.rank())) {
    failed[v] = true;
  }
  EXPECT_EQ(g.neighbors(zero.rank()).size(), 2u);
  EXPECT_FALSE(survivors_connected(g, failed));
  const FaultAwareRouter router(g, failed);
  EXPECT_FALSE(router.route(zero, Word(2, {1, 1, 1})).has_value());
}

TEST(Fault, DirectedConnectivityChecksBothDirections) {
  const DeBruijnGraph g(2, 3, Orientation::Directed);
  const std::vector<bool> none(g.vertex_count(), false);
  EXPECT_TRUE(survivors_connected(g, none));
  // Cutting both successors of the constant-0 word's "exit" breaks strong
  // connectivity: 000's only non-self successor is 001.
  std::vector<bool> failed(g.vertex_count(), false);
  failed[1] = true;  // 001
  EXPECT_FALSE(survivors_connected(g, failed));
}

TEST(Fault, RandomFaultSetProperties) {
  const DeBruijnGraph g(2, 6, Orientation::Undirected);
  Rng rng(33);
  const auto failed = random_fault_set(g, 10, rng);
  std::size_t count = 0;
  for (const bool f : failed) {
    count += f;
  }
  EXPECT_EQ(count, 10u);
  EXPECT_THROW(random_fault_set(g, 64, rng), ContractViolation);
}

TEST(Fault, LinkFailuresDropAndRerouteAround) {
  const DeBruijnGraph g(2, 5, Orientation::Undirected);
  SimConfig config;
  config.radix = 2;
  config.k = 5;
  Simulator sim(config);
  const Word src = Word::from_rank(2, 5, 3);
  const Word dst = Word::from_rank(2, 5, 26);
  const RoutingPath path = route_bidirectional_mp(src, dst);
  // Fail the first link of the oblivious path.
  const Hop& h = path.hop(0);
  const Word next = h.type == ShiftType::Left ? src.left_shift(h.digit)
                                              : src.right_shift(h.digit);
  sim.fail_link(src.rank(), next.rank());
  EXPECT_TRUE(sim.is_link_failed(src.rank(), next.rank()));
  sim.inject(0.0, Message(ControlCode::Data, src, dst, path));
  sim.run();
  EXPECT_EQ(sim.stats().delivered, 0u);
  EXPECT_EQ(sim.stats().dropped_link, 1u);

  // route_avoiding finds a way around the dead link and delivers.
  std::unordered_set<std::uint64_t> failed_links = {
      src.rank() * g.vertex_count() + next.rank()};
  const std::vector<bool> no_nodes(g.vertex_count(), false);
  const auto detour = route_avoiding(g, no_nodes, failed_links, src, dst);
  ASSERT_TRUE(detour.has_value());
  EXPECT_GE(detour->length(), path.length());
  sim.inject(sim.now(), Message(ControlCode::Data, src, dst, *detour));
  sim.run();
  EXPECT_EQ(sim.stats().delivered, 1u);
}

TEST(Fault, RouteAvoidingMatchesPlainRouterWithNoFaults) {
  const DeBruijnGraph g(2, 4, Orientation::Undirected);
  const std::vector<bool> none(g.vertex_count(), false);
  const std::unordered_set<std::uint64_t> no_links;
  for (std::uint64_t xr = 0; xr < g.vertex_count(); ++xr) {
    for (std::uint64_t yr = 0; yr < g.vertex_count(); ++yr) {
      const auto path = route_avoiding(g, none, no_links, g.word(xr), g.word(yr));
      ASSERT_TRUE(path.has_value());
      EXPECT_EQ(static_cast<int>(path->length()),
                undirected_distance(g.word(xr), g.word(yr)));
    }
  }
}

TEST(Fault, IsolatingLinkCutIsDetected) {
  // Cutting every link incident to the constant word isolates it.
  const DeBruijnGraph g(2, 4, Orientation::Undirected);
  const Word zero = Word::zero(2, 4);
  std::unordered_set<std::uint64_t> failed_links;
  for (const std::uint64_t v : g.neighbors(zero.rank())) {
    failed_links.insert(zero.rank() * g.vertex_count() + v);
    failed_links.insert(v * g.vertex_count() + zero.rank());
  }
  const std::vector<bool> none(g.vertex_count(), false);
  EXPECT_FALSE(route_avoiding(g, none, failed_links, zero,
                              Word(2, {1, 1, 1, 1}))
                   .has_value());
}

TEST(Fault, DegenerateNetworksRouteExactly) {
  // d = 1 and k = 1 corners: the BFS router must agree with the distance
  // function everywhere, including the single-vertex networks.
  for (const auto& p : testing::degenerate_grid()) {
    const DeBruijnGraph g(p.d, p.k, Orientation::Undirected);
    const std::vector<bool> none(g.vertex_count(), false);
    const FaultAwareRouter router(g, none);
    for (std::uint64_t xr = 0; xr < g.vertex_count(); ++xr) {
      for (std::uint64_t yr = 0; yr < g.vertex_count(); ++yr) {
        const auto path = router.route(g.word(xr), g.word(yr));
        ASSERT_TRUE(path.has_value()) << p;
        EXPECT_EQ(static_cast<int>(path->length()),
                  undirected_distance(g.word(xr), g.word(yr)))
            << p;
      }
    }
  }
}

TEST(Fault, DegenerateK1ToleratesHeavyFaults) {
  // K_7: any two survivors stay adjacent no matter how many others die —
  // far beyond the d-1 bound the general topology guarantees.
  const DeBruijnGraph g(7, 1, Orientation::Undirected);
  std::vector<bool> failed(g.vertex_count(), false);
  for (std::uint64_t v = 1; v <= 5; ++v) {
    failed[v] = true;
  }
  EXPECT_TRUE(survivors_connected(g, failed));
  const FaultAwareRouter router(g, failed);
  const auto path = router.route(g.word(0), g.word(6));
  ASSERT_TRUE(path.has_value());
  EXPECT_EQ(path->length(), 1u);
  EXPECT_FALSE(router.route(g.word(0), g.word(3)).has_value())
      << "a dead endpoint has no route";
}

TEST(Fault, DegenerateLinkAvoidanceDetoursOnK1) {
  const DeBruijnGraph g(3, 1, Orientation::Undirected);
  const std::vector<bool> none(g.vertex_count(), false);
  const std::unordered_set<std::uint64_t> dead_link = {
      0 * g.vertex_count() + 1};  // the directed link 0 -> 1
  const auto path = route_avoiding(g, none, dead_link, g.word(0), g.word(1));
  ASSERT_TRUE(path.has_value());
  EXPECT_EQ(path->length(), 2u) << "0 -> 2 -> 1 is the only detour in K_3";
  // The single-vertex network degenerates cleanly too.
  const DeBruijnGraph one(1, 3, Orientation::Undirected);
  const auto trivial = route_avoiding(one, {false}, {}, one.word(0),
                                      one.word(0));
  ASSERT_TRUE(trivial.has_value());
  EXPECT_EQ(trivial->length(), 0u);
}

TEST(Fault, SimulatorAndFaultRouterTogether) {
  // End to end: with one failed site, fault-aware paths deliver while the
  // oblivious shortest path through the failed site is dropped.
  const DeBruijnGraph g(2, 5, Orientation::Undirected);
  Rng rng(44);
  SimConfig config;
  config.radix = 2;
  config.k = 5;
  Simulator sim(config);
  const auto failed = random_fault_set(g, 1, rng);
  std::uint64_t failed_rank = 0;
  for (std::uint64_t v = 0; v < g.vertex_count(); ++v) {
    if (failed[v]) {
      failed_rank = v;
    }
  }
  sim.fail_node(failed_rank);
  const FaultAwareRouter router(g, failed);
  std::uint64_t sent = 0;
  for (std::uint64_t xr = 0; xr < g.vertex_count(); xr += 3) {
    for (std::uint64_t yr = 0; yr < g.vertex_count(); yr += 5) {
      if (failed[xr] || failed[yr]) {
        continue;
      }
      const auto path = router.route(g.word(xr), g.word(yr));
      ASSERT_TRUE(path.has_value());
      sim.inject(0.0, Message(ControlCode::Data, g.word(xr), g.word(yr), *path));
      ++sent;
    }
  }
  sim.run();
  EXPECT_EQ(sim.stats().delivered, sent);
  EXPECT_EQ(sim.stats().dropped_fault, 0u);
}

}  // namespace
}  // namespace dbn::net
