#include <gtest/gtest.h>

#include "common/contract.hpp"
#include "common/rng.hpp"
#include "core/common_substring.hpp"
#include "strings/matching.hpp"
#include "strings/naive.hpp"
#include "testing_util.hpp"

namespace dbn {
namespace {

using dbn::testing::random_symbols;
using strings::OverlapMin;
using strings::to_symbols;

TEST(MinLCostSuffixTree, MatchesQuadraticScanOnRandomWords) {
  Rng rng(1001);
  for (int trial = 0; trial < 400; ++trial) {
    const std::uint32_t alphabet = 2 + trial % 4;
    const std::size_t k = 1 + rng.below(24);
    const auto x = random_symbols(rng, k, alphabet);
    const auto y = random_symbols(rng, k, alphabet);
    const OverlapMin fast = min_l_cost_suffix_tree(x, y);
    const OverlapMin slow = strings::min_l_cost(x, y);
    EXPECT_EQ(fast.cost, slow.cost)
        << "trial " << trial << " k=" << k << " alphabet=" << alphabet;
    // The (s,t,theta) witness must be genuine: theta <= l_{s,t}.
    if (fast.theta > 0) {
      EXPECT_LE(fast.theta,
                strings::naive::matching_l(
                    x, y, static_cast<std::size_t>(fast.s - 1),
                    static_cast<std::size_t>(fast.t - 1)))
          << "trial " << trial;
    }
    EXPECT_EQ(fast.cost, 2 * static_cast<int>(k) - 1 + fast.s - fast.t -
                             fast.theta);
  }
}

TEST(MinLCostSuffixTree, IdenticalWords) {
  const auto x = to_symbols("0101");
  const OverlapMin m = min_l_cost_suffix_tree(x, x);
  EXPECT_EQ(m.cost, 0);
  EXPECT_EQ(m.theta, 4);
}

TEST(MinLCostSuffixTree, DisjointAlphabetsGiveDiameter) {
  const auto x = to_symbols("aaaa");
  const auto y = to_symbols("bbbb");
  const OverlapMin m = min_l_cost_suffix_tree(x, y);
  EXPECT_EQ(m.cost, 4);
  EXPECT_EQ(m.theta, 0);
  EXPECT_EQ(m.s, 1);
  EXPECT_EQ(m.t, 4);
}

TEST(MinLCostSuffixTree, PaperCounterexamplePair) {
  // X = Y = (0,1): the printed Proposition 5 (tree of X ⊥ reverse(Y) ⊤)
  // would report a strictly positive l-side minimum; the correct value is 0.
  const std::vector<strings::Symbol> x = {0, 1};
  EXPECT_EQ(min_l_cost_suffix_tree(x, x).cost, 0);
}

TEST(MinLCostSuffixTree, SingleDigitWords) {
  const std::vector<strings::Symbol> a = {3};
  const std::vector<strings::Symbol> b = {3};
  const std::vector<strings::Symbol> c = {4};
  EXPECT_EQ(min_l_cost_suffix_tree(a, b).cost, 0);
  EXPECT_EQ(min_l_cost_suffix_tree(a, c).cost, 1);
}

TEST(MinLCostSuffixTree, RejectsBadInput) {
  const auto x = to_symbols("ab");
  const auto y = to_symbols("abc");
  EXPECT_THROW(min_l_cost_suffix_tree(x, y), ContractViolation);
  EXPECT_THROW(min_l_cost_suffix_tree({}, {}), ContractViolation);
}

TEST(LongestCommonSubstring, KnownExamples) {
  EXPECT_EQ(longest_common_substring_suffix_tree(to_symbols("banana"),
                                                 to_symbols("ananas")),
            5);  // "anana"
  EXPECT_EQ(longest_common_substring_suffix_tree(to_symbols("abc"),
                                                 to_symbols("xyz")),
            0);
  EXPECT_EQ(longest_common_substring_suffix_tree(to_symbols("abc"), {}), 0);
}

TEST(LongestCommonSubstring, MatchesNaiveOnRandomStrings) {
  Rng rng(1102);
  for (int trial = 0; trial < 200; ++trial) {
    const std::uint32_t alphabet = 2 + trial % 3;
    const auto a = random_symbols(rng, rng.below(40), alphabet);
    const auto b = random_symbols(rng, rng.below(40), alphabet);
    EXPECT_EQ(longest_common_substring_suffix_tree(a, b),
              strings::naive::longest_common_substring(a, b))
        << "trial " << trial;
  }
}

}  // namespace
}  // namespace dbn
