// Serving stack tests: wire protocol framing/decoding (round trips and
// every malformed-frame class), RouteServer request handling against the
// reference routers, bounded-queue backpressure, drain semantics, and a
// seeded concurrent-client determinism check (same seed, same per-client
// response bytes, run twice).
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/rng.hpp"
#include "core/distance.hpp"
#include "core/path.hpp"
#include "core/routers.hpp"
#include "debruijn/word.hpp"
#include "serve/protocol.hpp"
#include "serve/server.hpp"

namespace {

using namespace dbn;
using namespace dbn::serve;

Word random_word(Rng& rng, std::uint32_t d, std::size_t k) {
  std::vector<Digit> digits(k);
  for (auto& digit : digits) {
    digit = static_cast<Digit>(rng.below(d));
  }
  return Word(d, std::move(digits));
}

Word make_word(std::uint32_t d, std::string_view text) {
  std::vector<Digit> digits;
  for (const char c : text) {
    digits.push_back(static_cast<Digit>(c - '0'));
  }
  return Word(d, std::move(digits));
}

/// Splits a byte stream of response frames back into decoded responses.
std::vector<Response> decode_stream(std::string_view bytes) {
  FrameReader reader;
  reader.feed(bytes);
  std::vector<Response> out;
  std::string payload;
  while (reader.next(payload) == FrameReader::Result::Frame) {
    const DecodedResponse decoded = decode_response(payload);
    EXPECT_EQ(decoded.error, DecodeError::None);
    out.push_back(decoded.response);
  }
  EXPECT_FALSE(reader.poisoned());
  EXPECT_EQ(reader.pending_bytes(), 0u);
  return out;
}

/// A test client: captures every response frame the server sends it.
struct Client {
  explicit Client(RouteServer& server) {
    conn = server.connect([this](std::string_view frames) {
      const std::lock_guard<std::mutex> lock(mutex);
      bytes.append(frames);
    });
  }
  std::string snapshot() {
    const std::lock_guard<std::mutex> lock(mutex);
    return bytes;
  }
  std::vector<Response> responses() { return decode_stream(snapshot()); }

  std::mutex mutex;
  std::string bytes;
  std::shared_ptr<Connection> conn;
};

bool replay_lands_on(const Word& x, const Word& y,
                     const std::vector<Hop>& hops) {
  Word at = x;
  for (const Hop& h : hops) {
    const Digit digit = h.is_wildcard() ? 0 : h.digit;
    at = h.type == ShiftType::Left ? at.left_shift(digit)
                                   : at.right_shift(digit);
  }
  return at == y;
}

// --- protocol: round trips --------------------------------------------------

TEST(ServeProtocol, RouteRequestRoundTrip) {
  const Word x = make_word(3, "0120");
  const Word y = make_word(3, "2101");
  std::string frame;
  encode_route_request(77, x, y, frame);

  FrameReader reader;
  reader.feed(frame);
  std::string payload;
  ASSERT_EQ(reader.next(payload), FrameReader::Result::Frame);
  const DecodedRequest decoded = decode_request(payload);
  ASSERT_EQ(decoded.error, DecodeError::None);
  EXPECT_EQ(decoded.request.type, RequestType::Route);
  EXPECT_EQ(decoded.request.id, 77u);
  EXPECT_EQ(decoded.request.x, (std::vector<std::uint8_t>{0, 1, 2, 0}));
  EXPECT_EQ(decoded.request.y, (std::vector<std::uint8_t>{2, 1, 0, 1}));
  EXPECT_EQ(reader.next(payload), FrameReader::Result::NeedMore);
}

TEST(ServeProtocol, ControlRequestsRoundTrip) {
  for (const RequestType type : {RequestType::Ping, RequestType::Stats}) {
    std::string frame;
    encode_control_request(type, 5, frame);
    FrameReader reader;
    reader.feed(frame);
    std::string payload;
    ASSERT_EQ(reader.next(payload), FrameReader::Result::Frame);
    const DecodedRequest decoded = decode_request(payload);
    ASSERT_EQ(decoded.error, DecodeError::None);
    EXPECT_EQ(decoded.request.type, type);
    EXPECT_EQ(decoded.request.id, 5u);
  }
}

TEST(ServeProtocol, RouteResponseRoundTripPreservesWildcards) {
  RoutingPath path;
  path.push(Hop{ShiftType::Left, 2});
  path.push(Hop{ShiftType::Left, kWildcard});
  path.push(Hop{ShiftType::Right, 0});
  std::string frame;
  encode_route_response(9, path, frame);

  const std::vector<Response> responses = decode_stream(frame);
  ASSERT_EQ(responses.size(), 1u);
  const Response& r = responses[0];
  EXPECT_EQ(r.status, Status::Ok);
  EXPECT_EQ(r.type, RequestType::Route);
  EXPECT_EQ(r.id, 9u);
  ASSERT_EQ(r.hops.size(), 3u);
  EXPECT_EQ(r.hops[0].type, ShiftType::Left);
  EXPECT_EQ(r.hops[0].digit, 2u);
  EXPECT_TRUE(r.hops[1].is_wildcard());
  EXPECT_EQ(r.hops[2].type, ShiftType::Right);
}

TEST(ServeProtocol, DistanceAndErrorResponsesRoundTrip) {
  std::string frame;
  encode_distance_response(3, 11, frame);
  encode_error_response(RequestType::Route, Status::Overloaded, 4,
                        "queue full", frame);
  const std::vector<Response> responses = decode_stream(frame);
  ASSERT_EQ(responses.size(), 2u);
  EXPECT_EQ(responses[0].distance, 11u);
  EXPECT_EQ(responses[1].status, Status::Overloaded);
  EXPECT_EQ(responses[1].id, 4u);
  EXPECT_EQ(responses[1].body, "queue full");
}

TEST(ServeProtocol, FrameReaderReassemblesBytewiseFeeds) {
  const Word x = make_word(2, "0110");
  const Word y = make_word(2, "1001");
  std::string stream;
  encode_route_request(1, x, y, stream);
  encode_distance_request(2, x, y, stream);
  encode_control_request(RequestType::Ping, 3, stream);

  FrameReader reader;
  std::string payload;
  std::vector<std::uint64_t> ids;
  for (const char byte : stream) {
    reader.feed(std::string_view(&byte, 1));
    while (reader.next(payload) == FrameReader::Result::Frame) {
      const DecodedRequest decoded = decode_request(payload);
      ASSERT_EQ(decoded.error, DecodeError::None);
      ids.push_back(decoded.request.id);
    }
  }
  EXPECT_EQ(ids, (std::vector<std::uint64_t>{1, 2, 3}));
  EXPECT_EQ(reader.pending_bytes(), 0u);
}

// --- protocol: malformed input ----------------------------------------------

TEST(ServeProtocol, OversizedFramePoisonsReaderPermanently) {
  std::string bytes;
  const std::uint32_t huge = kMaxPayload + 1;
  bytes.push_back(static_cast<char>(huge & 0xFF));
  bytes.push_back(static_cast<char>((huge >> 8) & 0xFF));
  bytes.push_back(static_cast<char>((huge >> 16) & 0xFF));
  bytes.push_back(static_cast<char>((huge >> 24) & 0xFF));
  FrameReader reader;
  reader.feed(bytes);
  std::string payload;
  EXPECT_EQ(reader.next(payload), FrameReader::Result::Error);
  EXPECT_TRUE(reader.poisoned());
  // Feeding a perfectly valid frame afterwards cannot un-poison it: the
  // stream position is unrecoverable.
  std::string valid;
  encode_control_request(RequestType::Ping, 1, valid);
  reader.feed(valid);
  EXPECT_EQ(reader.next(payload), FrameReader::Result::Error);
}

TEST(ServeProtocol, ZeroLengthFramePoisonsReaderPermanently) {
  // A zero-length frame cannot be a real request (every valid payload
  // starts with a 9-byte header), so the reader treats it exactly like an
  // oversized length: connection-fatal, no resync. Found by the serve_frame
  // fuzz battery; the shrunk input is pinned in tests/corpus/wire too.
  FrameReader reader;
  reader.feed(std::string(4, '\0'));
  std::string payload;
  EXPECT_EQ(reader.next(payload), FrameReader::Result::Error);
  EXPECT_TRUE(reader.poisoned());
  // A valid frame after the zero-length header must not revive the stream.
  std::string valid;
  encode_control_request(RequestType::Ping, 1, valid);
  reader.feed(valid);
  EXPECT_EQ(reader.next(payload), FrameReader::Result::Error);
}

TEST(ServeProtocol, TruncatedHeaderAndBodyAreRejected) {
  EXPECT_EQ(decode_request("").error, DecodeError::TruncatedHeader);
  EXPECT_EQ(decode_request("\x01").error, DecodeError::TruncatedHeader);

  // A route request whose body promises k=4 but carries fewer digits.
  const Word x = make_word(2, "0110");
  const Word y = make_word(2, "1001");
  std::string frame;
  encode_route_request(1, x, y, frame);
  const std::string_view payload(frame.data() + 4, frame.size() - 4);
  for (std::size_t cut = 10; cut < payload.size(); ++cut) {
    EXPECT_EQ(decode_request(payload.substr(0, cut)).error,
              DecodeError::TruncatedBody);
  }
  std::string trailing(payload);
  trailing.push_back('\0');
  EXPECT_EQ(decode_request(trailing).error, DecodeError::TrailingBytes);
}

TEST(ServeProtocol, UnknownTypeIsRejectedWithIdIntact) {
  std::string payload;
  payload.push_back('\x63');  // type 99
  for (int i = 0; i < 8; ++i) {
    payload.push_back(i == 0 ? '\x2a' : '\0');  // id 42, LE
  }
  const DecodedRequest decoded = decode_request(payload);
  EXPECT_EQ(decoded.error, DecodeError::UnknownType);
  EXPECT_EQ(decoded.request.id, 42u);
}

TEST(ServeProtocol, WordFromWireValidatesDigits) {
  EXPECT_TRUE(word_from_wire(2, {0, 1, 1, 0}).has_value());
  EXPECT_FALSE(word_from_wire(2, {0, 2, 1, 0}).has_value());
  EXPECT_FALSE(word_from_wire(2, {0, kWireWildcard, 1, 0}).has_value());
}

// --- server: request handling -----------------------------------------------

TEST(ServeServer, RoutesAndDistancesMatchReferenceRouters) {
  ServeConfig config;
  config.d = 2;
  config.k = 8;
  config.threads = 2;
  config.cache_entries = 256;
  RouteServer server(config);
  Client client(server);

  Rng rng(7);
  std::vector<std::pair<Word, Word>> pairs;
  std::string stream;
  for (std::uint64_t i = 0; i < 200; ++i) {
    const Word x = random_word(rng, config.d, config.k);
    const Word y = random_word(rng, config.d, config.k);
    pairs.emplace_back(x, y);
    encode_route_request(2 * i, x, y, stream);
    encode_distance_request(2 * i + 1, x, y, stream);
  }
  ASSERT_TRUE(client.conn->feed(stream));
  server.wait_drained();

  const std::vector<Response> responses = client.responses();
  ASSERT_EQ(responses.size(), 2 * pairs.size());
  for (const Response& r : responses) {
    ASSERT_EQ(r.status, Status::Ok) << r.body;
    const auto& [x, y] = pairs[static_cast<std::size_t>(r.id / 2)];
    const int expected = undirected_distance(x, y);
    if (r.type == RequestType::Route) {
      EXPECT_TRUE(replay_lands_on(x, y, r.hops));
      EXPECT_EQ(static_cast<int>(r.hops.size()), expected);
    } else {
      EXPECT_EQ(static_cast<int>(r.distance), expected);
    }
  }
  const ServeStats stats = server.stats();
  EXPECT_EQ(stats.requests, 2 * pairs.size());
  EXPECT_EQ(stats.responses_ok, 2 * pairs.size());
  EXPECT_EQ(stats.rejected_overload + stats.rejected_bad_request +
                stats.rejected_draining + stats.protocol_errors,
            0u);
}

TEST(ServeServer, CompiledTableBackendServesOptimalPaths) {
  ServeConfig config;
  config.d = 2;
  config.k = 5;
  config.backend = BatchBackend::CompiledTable;
  RouteServer server(config);
  Client client(server);

  std::string stream;
  Rng rng(3);
  std::vector<std::pair<Word, Word>> pairs;
  for (std::uint64_t i = 0; i < 64; ++i) {
    const Word x = random_word(rng, config.d, config.k);
    const Word y = random_word(rng, config.d, config.k);
    pairs.emplace_back(x, y);
    encode_route_request(i, x, y, stream);
  }
  ASSERT_TRUE(client.conn->feed(stream));
  server.wait_drained();
  const std::vector<Response> responses = client.responses();
  ASSERT_EQ(responses.size(), pairs.size());
  for (const Response& r : responses) {
    ASSERT_EQ(r.status, Status::Ok);
    const auto& [x, y] = pairs[static_cast<std::size_t>(r.id)];
    EXPECT_TRUE(replay_lands_on(x, y, r.hops));
    EXPECT_EQ(static_cast<int>(r.hops.size()), undirected_distance(x, y));
  }
}

TEST(ServeServer, MalformedRequestsAnswerBadRequestAndKeepConnection) {
  ServeConfig config;
  config.d = 2;
  config.k = 4;
  RouteServer server(config);
  Client client(server);

  // Wrong k for the network.
  std::string stream;
  encode_route_request(1, make_word(2, "01101"), make_word(2, "10010"),
                       stream);
  // Digit out of range for d=2 (valid frame, invalid word).
  encode_route_request(2, make_word(3, "0120"), make_word(3, "1001"), stream);
  // Unknown request type, id readable.
  std::string bogus;
  bogus.push_back('\x09');
  bogus.push_back('\0');
  bogus.push_back('\0');
  bogus.push_back('\0');
  bogus.push_back('\x63');
  bogus.push_back('\x03');
  for (int i = 0; i < 7; ++i) {
    bogus.push_back('\0');
  }
  stream += bogus;
  // A healthy request after the malformed ones must still be served.
  encode_route_request(4, make_word(2, "0110"), make_word(2, "1001"), stream);

  ASSERT_TRUE(client.conn->feed(stream));
  server.wait_drained();
  // Rejects answered inline by the reader interleave with the
  // dispatcher's answers, so assert per id rather than by position.
  const std::vector<Response> responses = client.responses();
  ASSERT_EQ(responses.size(), 4u);
  std::map<std::uint64_t, Status> by_id;
  for (const Response& r : responses) {
    by_id[r.id] = r.status;
  }
  EXPECT_EQ(by_id.at(1), Status::BadRequest);  // wrong k
  EXPECT_EQ(by_id.at(2), Status::BadRequest);  // digit out of range
  EXPECT_EQ(by_id.at(3), Status::BadRequest);  // unknown type
  EXPECT_EQ(by_id.at(4), Status::Ok);
  EXPECT_TRUE(client.conn->clean());
  EXPECT_EQ(server.stats().rejected_bad_request, 3u);
}

TEST(ServeServer, FramingErrorIsConnectionFatal) {
  ServeConfig config;
  config.d = 2;
  config.k = 4;
  RouteServer server(config);
  Client client(server);

  std::string bytes;
  const std::uint32_t huge = kMaxPayload + 1;
  for (int i = 0; i < 4; ++i) {
    bytes.push_back(static_cast<char>((huge >> (8 * i)) & 0xFF));
  }
  EXPECT_FALSE(client.conn->feed(bytes));
  EXPECT_FALSE(client.conn->clean());
  server.wait_drained();
  EXPECT_EQ(server.stats().protocol_errors, 1u);
}

TEST(ServeServer, TruncatedTailMakesConnectionUnclean) {
  ServeConfig config;
  config.d = 2;
  config.k = 4;
  RouteServer server(config);
  Client client(server);
  std::string stream;
  encode_control_request(RequestType::Ping, 1, stream);
  // Half a header left dangling: still a live connection, but not clean.
  ASSERT_TRUE(client.conn->feed(stream + std::string("\x05\x00", 2)));
  EXPECT_FALSE(client.conn->clean());
  server.wait_drained();
}

TEST(ServeServer, PingAndStatsAnswerInline) {
  ServeConfig config;
  config.d = 2;
  config.k = 4;
  RouteServer server(config);
  Client client(server);
  std::string stream;
  encode_control_request(RequestType::Ping, 10, stream);
  encode_control_request(RequestType::Stats, 11, stream);
  ASSERT_TRUE(client.conn->feed(stream));
  // No drain needed: control requests never touch the dispatcher queue.
  const std::vector<Response> responses = client.responses();
  ASSERT_EQ(responses.size(), 2u);
  EXPECT_EQ(responses[0].type, RequestType::Ping);
  EXPECT_EQ(responses[0].id, 10u);
  EXPECT_EQ(responses[1].type, RequestType::Stats);
  EXPECT_NE(responses[1].body.find("\"serve.requests\""), std::string::npos);
  server.wait_drained();
}

// --- server: backpressure and drain -----------------------------------------

TEST(ServeServer, BoundedQueueShedsLoadButAnswersEveryRequest) {
  // A queue of 1 with a flood of requests must shed load (Overloaded) at
  // least once across attempts, and every request — served or shed — must
  // be answered exactly once. The exact shed count is timing-dependent;
  // the exactly-once accounting is not.
  bool saw_overload = false;
  for (int attempt = 0; attempt < 20 && !saw_overload; ++attempt) {
    ServeConfig config;
    config.d = 2;
    config.k = 16;
    config.queue_capacity = 1;
    config.max_batch = 1;
    RouteServer server(config);
    Client client(server);
    Rng rng(100 + attempt);
    constexpr std::uint64_t kRequests = 2000;
    std::string stream;
    for (std::uint64_t i = 0; i < kRequests; ++i) {
      encode_route_request(i, random_word(rng, config.d, config.k),
                           random_word(rng, config.d, config.k), stream);
    }
    ASSERT_TRUE(client.conn->feed(stream));
    server.wait_drained();
    const std::vector<Response> responses = client.responses();
    ASSERT_EQ(responses.size(), kRequests);
    const ServeStats stats = server.stats();
    EXPECT_EQ(stats.responses_ok + stats.rejected_overload, kRequests);
    saw_overload = stats.rejected_overload > 0;
  }
  EXPECT_TRUE(saw_overload);
}

TEST(ServeServer, DrainRejectsNewWorkAndAnswersAdmitted) {
  ServeConfig config;
  config.d = 2;
  config.k = 10;
  RouteServer server(config);
  Client client(server);

  Rng rng(5);
  std::string stream;
  constexpr std::uint64_t kBefore = 50;
  for (std::uint64_t i = 0; i < kBefore; ++i) {
    encode_route_request(i, random_word(rng, config.d, config.k),
                         random_word(rng, config.d, config.k), stream);
  }
  ASSERT_TRUE(client.conn->feed(stream));
  server.begin_drain();
  EXPECT_TRUE(server.draining());
  std::string late;
  encode_route_request(999, random_word(rng, config.d, config.k),
                       random_word(rng, config.d, config.k), late);
  ASSERT_TRUE(client.conn->feed(late));
  server.wait_drained();

  const std::vector<Response> responses = client.responses();
  ASSERT_EQ(responses.size(), kBefore + 1);
  std::uint64_t ok = 0;
  std::uint64_t draining = 0;
  for (const Response& r : responses) {
    if (r.status == Status::Ok) {
      ++ok;
    } else if (r.status == Status::Draining) {
      ++draining;
      EXPECT_EQ(r.id, 999u);
    }
  }
  // Everything admitted before begin_drain() is answered Ok; the late
  // request is refused. (The 50 may legally include some Ok answers sent
  // before the drain flag was set — but never the reverse.)
  EXPECT_EQ(ok, kBefore);
  EXPECT_EQ(draining, 1u);
}

TEST(ServeServer, CloseDiscardsResponsesButKeepsAccountingExact) {
  ServeConfig config;
  config.d = 2;
  config.k = 10;
  RouteServer server(config);
  Client client(server);
  Rng rng(11);
  std::string stream;
  for (std::uint64_t i = 0; i < 100; ++i) {
    encode_route_request(i, random_word(rng, config.d, config.k),
                         random_word(rng, config.d, config.k), stream);
  }
  ASSERT_TRUE(client.conn->feed(stream));
  client.conn->close();  // peer hangs up with requests in flight
  server.wait_drained();
  EXPECT_EQ(server.stats().responses_ok, 100u);
}

// --- determinism ------------------------------------------------------------

// One seeded multi-client run: returns each client's response bytes.
std::vector<std::string> concurrent_run(std::uint64_t seed) {
  ServeConfig config;
  config.d = 2;
  config.k = 12;
  config.threads = 4;
  config.cache_entries = 1024;
  config.queue_capacity = 1u << 16;  // no shedding: keep the runs comparable
  RouteServer server(config);

  constexpr std::size_t kClients = 4;
  constexpr std::uint64_t kPerClient = 300;
  std::vector<std::unique_ptr<Client>> clients;
  for (std::size_t c = 0; c < kClients; ++c) {
    clients.push_back(std::make_unique<Client>(server));
  }
  std::vector<std::thread> feeders;
  feeders.reserve(kClients);
  for (std::size_t c = 0; c < kClients; ++c) {
    feeders.emplace_back([&, c] {
      Rng rng = Rng(seed).fork(c);
      std::string stream;
      for (std::uint64_t i = 0; i < kPerClient; ++i) {
        const std::uint64_t id = (static_cast<std::uint64_t>(c) << 48) | i;
        if (i % 4 == 0) {
          encode_distance_request(id, random_word(rng, config.d, config.k),
                                  random_word(rng, config.d, config.k),
                                  stream);
        } else {
          encode_route_request(id, random_word(rng, config.d, config.k),
                               random_word(rng, config.d, config.k), stream);
        }
        // Fragmented feeds keep the reassembly path honest under
        // concurrency too.
        const std::size_t half = stream.size() / 2;
        EXPECT_TRUE(clients[c]->conn->feed(
            std::string_view(stream).substr(0, half)));
        EXPECT_TRUE(
            clients[c]->conn->feed(std::string_view(stream).substr(half)));
        stream.clear();
      }
    });
  }
  for (std::thread& t : feeders) {
    t.join();
  }
  server.wait_drained();
  std::vector<std::string> out;
  for (const auto& client : clients) {
    out.push_back(client->snapshot());
  }
  return out;
}

TEST(ServeServer, SeededConcurrentClientsAreDeterministic) {
  const std::vector<std::string> first = concurrent_run(42);
  const std::vector<std::string> second = concurrent_run(42);
  ASSERT_EQ(first.size(), second.size());
  for (std::size_t c = 0; c < first.size(); ++c) {
    // Per-connection responses arrive in admission order, and every
    // backend is deterministic — the raw bytes must match run to run.
    EXPECT_EQ(first[c], second[c]) << "client " << c;
    EXPECT_FALSE(first[c].empty());
  }
}

}  // namespace
