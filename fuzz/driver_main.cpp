// Standalone replay driver for toolchains without libFuzzer (gcc builds).
//
// A clang -fsanitize=fuzzer build links libFuzzer's own main(), which
// replays any file arguments once each and exits; this driver gives the
// same binaries the same contract everywhere else, so the corpus-replay
// ctest entries (fuzz/CMakeLists.txt) run under every compiler even
// though coverage-guided *fuzzing* stays clang-only.
#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size);

int main(int argc, char** argv) {
  int replayed = 0;
  for (int i = 1; i < argc; ++i) {
    const std::string path = argv[i];
    if (!path.empty() && path[0] == '-') {
      continue;  // ignore libFuzzer-style flags so commands stay portable
    }
    std::ifstream in(path, std::ios::binary);
    if (!in) {
      std::fprintf(stderr, "driver: cannot read %s\n", path.c_str());
      return 1;
    }
    const std::vector<char> bytes((std::istreambuf_iterator<char>(in)),
                                  std::istreambuf_iterator<char>());
    LLVMFuzzerTestOneInput(reinterpret_cast<const std::uint8_t*>(bytes.data()),
                           bytes.size());
    ++replayed;
  }
  std::fprintf(stderr, "driver: replayed %d input(s) clean\n", replayed);
  return 0;
}
