// libFuzzer harness for obs::json_parse: rejection is always acceptable,
// but parse-accepts implies the value respects the depth cap and
// serializes to a canonical fixpoint; leading-zero numbers and over-deep
// nesting must be rejected. Battery shared with the deterministic tests
// via src/testkit/fuzz_targets.cpp.
#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string_view>

#include "testkit/fuzz_targets.hpp"

namespace {
constexpr std::size_t kMaxInput = 1 << 16;
}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  if (size > kMaxInput) {
    return 0;
  }
  const std::string_view bytes(reinterpret_cast<const char*>(data), size);
  const std::vector<std::string> violations =
      dbn::testkit::check_json_parse_bytes(bytes);
  if (!violations.empty()) {
    for (const std::string& what : violations) {
      std::fprintf(stderr, "json_parse invariant violated: %s\n",
                   what.c_str());
    }
    std::abort();
  }
  return 0;
}
