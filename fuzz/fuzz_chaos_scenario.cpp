// libFuzzer harness for the chaos/1 scenario text format: malformed input
// must be rejected with exactly ContractViolation (never another
// exception, never a crash or stall), and parse -> to_text -> parse must
// be a fixpoint. Battery shared with the deterministic tests via
// src/testkit/fuzz_targets.cpp.
#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string_view>

#include "testkit/fuzz_targets.hpp"

namespace {
constexpr std::size_t kMaxInput = 1 << 16;
}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  if (size > kMaxInput) {
    return 0;
  }
  const std::string_view bytes(reinterpret_cast<const char*>(data), size);
  const std::vector<std::string> violations =
      dbn::testkit::check_chaos_scenario_bytes(bytes);
  if (!violations.empty()) {
    for (const std::string& what : violations) {
      std::fprintf(stderr, "chaos_scenario invariant violated: %s\n",
                   what.c_str());
    }
    std::abort();
  }
  return 0;
}
