// libFuzzer harness for the serve/1 wire surface: bytes -> FrameReader ->
// decode -> re-encode. The rule: framing errors are connection-fatal, but
// nothing below framing may crash — and everything that decodes must
// re-encode to the input bytes. The battery lives in
// src/testkit/fuzz_targets.cpp so tests/test_wire_corpus.cpp replays the
// exact same invariants deterministically.
#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string_view>

#include "testkit/fuzz_targets.hpp"

namespace {
// Big inputs add frames, not states: the parser is O(n) with no
// cross-frame memory, so cap the work per iteration.
constexpr std::size_t kMaxInput = 1 << 16;
}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  if (size > kMaxInput) {
    return 0;
  }
  const std::string_view bytes(reinterpret_cast<const char*>(data), size);
  const std::vector<std::string> violations =
      dbn::testkit::check_serve_frame_bytes(bytes);
  if (!violations.empty()) {
    for (const std::string& what : violations) {
      std::fprintf(stderr, "serve_frame invariant violated: %s\n",
                   what.c_str());
    }
    std::abort();
  }
  return 0;
}
